package atmostonce_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"atmostonce"
)

// ExampleRun executes jobs on real goroutines with at-most-once
// semantics. The exact number performed varies with scheduling, but the
// invariants do not: zero duplicates, and every job is either performed
// or reported back.
func ExampleRun() {
	sum, err := atmostonce.Run(
		atmostonce.Config{Jobs: 500, Workers: 4},
		func(worker, job int) { /* the at-most-once payload */ },
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("duplicates:", sum.Duplicates)
	fmt.Println("accounted:", sum.Performed+sum.Remaining == 500)
	fmt.Println("within guarantee:", sum.Remaining <= 2*4-2)
	// Output:
	// duplicates: 0
	// accounted: true
	// within guarantee: true
}

// ExampleDispatcher_Do shows the v2 submission API's two ctx-shaped
// behaviors: a submission context that expires while the submitter is
// parked on a full queue releases it WITHOUT consuming a job id, and a
// Task whose deadline passes before its round is assembled is never
// started — it resolves exactly once with Expired set.
func ExampleDispatcher_Do() {
	d, err := atmostonce.NewDispatcher(atmostonce.DispatcherConfig{
		Shards:          1,
		WorkersPerShard: 2,
		QueueDepth:      2, // tiny bounded queue, easy to fill
		SubmitPolicy:    atmostonce.Block,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer d.Close()
	bg := context.Background()

	// Fill the shard: two gated jobs occupy the whole bounded queue.
	gate := make(chan struct{})
	blocked := atmostonce.Task{Fn: func(context.Context) error { <-gate; return nil }}
	if _, err := d.Do(bg, blocked); err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, err := d.Do(bg, blocked); err != nil {
		fmt.Println("error:", err)
		return
	}

	// Cancellation: admission into the full queue parks the submitter;
	// the expiring ctx releases it, job id unconsumed.
	ctx, cancel := context.WithTimeout(bg, 10*time.Millisecond)
	defer cancel()
	_, err = d.Do(ctx, atmostonce.Task{Fn: func(context.Context) error { return nil }})
	fmt.Println("admission cancelled:", errors.Is(err, context.DeadlineExceeded))
	close(gate)

	// Deadline miss: a deadline already in the past expires at round
	// assembly — the payload below never runs.
	h, err := d.Do(bg, atmostonce.Task{
		Fn:       func(context.Context) error { fmt.Println("never printed"); return nil },
		Deadline: time.Now().Add(-time.Millisecond),
		Priority: atmostonce.Low,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r := <-h.Done()
	fmt.Println("expired:", r.Expired, "err:", r.Err)
	// Output:
	// admission cancelled: true
	// expired: true err: context deadline exceeded
}

// ExampleWriteAll guarantees completion instead (duplicates allowed —
// note the payload must tolerate concurrent duplicate invocations, hence
// the atomic stores).
func ExampleWriteAll() {
	cells := make([]atomic.Bool, 257)
	_, err := atmostonce.WriteAll(256, 4, func(worker, cell int) {
		cells[cell].Store(true)
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	missing := 0
	for c := 1; c <= 256; c++ {
		if !cells[c].Load() {
			missing++
		}
	}
	fmt.Println("missing:", missing)
	// Output:
	// missing: 0
}

// ExampleSimulate reproduces Theorem 4.4 in one call: under the paper's
// worst-case adversary, KKβ performs exactly n−(β+m−2) jobs.
func ExampleSimulate() {
	rep, err := atmostonce.Simulate(atmostonce.SimConfig{
		Jobs: 1000, Workers: 5, Scheduler: atmostonce.Tightness,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("performed:", rep.Performed)
	fmt.Println("bound n-(2m-2):", rep.EffectivenessLB)
	fmt.Println("duplicates:", rep.Duplicates)
	// Output:
	// performed: 992
	// bound n-(2m-2): 992
	// duplicates: 0
}
