package atmostonce_test

import (
	"fmt"
	"sync/atomic"

	"atmostonce"
)

// ExampleRun executes jobs on real goroutines with at-most-once
// semantics. The exact number performed varies with scheduling, but the
// invariants do not: zero duplicates, and every job is either performed
// or reported back.
func ExampleRun() {
	sum, err := atmostonce.Run(
		atmostonce.Config{Jobs: 500, Workers: 4},
		func(worker, job int) { /* the at-most-once payload */ },
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("duplicates:", sum.Duplicates)
	fmt.Println("accounted:", sum.Performed+sum.Remaining == 500)
	fmt.Println("within guarantee:", sum.Remaining <= 2*4-2)
	// Output:
	// duplicates: 0
	// accounted: true
	// within guarantee: true
}

// ExampleWriteAll guarantees completion instead (duplicates allowed —
// note the payload must tolerate concurrent duplicate invocations, hence
// the atomic stores).
func ExampleWriteAll() {
	cells := make([]atomic.Bool, 257)
	_, err := atmostonce.WriteAll(256, 4, func(worker, cell int) {
		cells[cell].Store(true)
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	missing := 0
	for c := 1; c <= 256; c++ {
		if !cells[c].Load() {
			missing++
		}
	}
	fmt.Println("missing:", missing)
	// Output:
	// missing: 0
}

// ExampleSimulate reproduces Theorem 4.4 in one call: under the paper's
// worst-case adversary, KKβ performs exactly n−(β+m−2) jobs.
func ExampleSimulate() {
	rep, err := atmostonce.Simulate(atmostonce.SimConfig{
		Jobs: 1000, Workers: 5, Scheduler: atmostonce.Tightness,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("performed:", rep.Performed)
	fmt.Println("bound n-(2m-2):", rep.EffectivenessLB)
	fmt.Println("duplicates:", rep.Duplicates)
	// Output:
	// performed: 992
	// bound n-(2m-2): 992
	// duplicates: 0
}
