// Crash recovery: at-most-once across process death.
//
// A dispatcher over the durable mmap backend journals every performed
// job in its register file before running the payload. This example
// proves the property the hard way: it re-executes itself as a child
// process, the child freezes with a round of the job stream genuinely
// in flight and is killed (os.Exit — no cleanup, no Close, exactly a
// crash), and the parent then reopens the same register files,
// re-submits the identical stream and lets recovery sort out what
// already ran. Every job appends its id to a shared log file when it
// executes, so duplicates and losses are counted from the log itself:
// both must be zero.
//
// The example runs the kill twice, once per journaling mode:
//
//   - JournalBatch=1 (journal per job): the kill is engineered to land
//     at an action boundary (every worker is parked inside a payload it
//     has already journaled and logged), which is the paper's crash
//     model (§2.1): crashes stop a process between actions. Invariant:
//     zero duplicates AND zero losses.
//   - JournalBatch=16 (group commit, DESIGN.md §14): each worker
//     journals a claim of up to 16 jobs in one vectored write, then runs
//     the payloads. The same kill now lands mid-claim — the frozen
//     worker's whole claim is journaled but only a prefix of its
//     payloads ran, so recovery counts the journaled remainder as
//     performed. Invariant: still zero duplicates, and the loss is
//     bounded by JournalBatch-1 per worker — the crash window the
//     batching knob buys its throughput with.
//
// Run with: go run ./examples/recover
package main

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"atmostonce"
)

const (
	totalJobs  = 2000
	workers    = 4
	groupBatch = 16 // JournalBatch of the group-commit scenario
	killAfter  = 40 // payloads to run before the child freezes and dies
	crashExit  = 42 // child's exit code for "crashed as planned"

	envChild = "AMO_RECOVER_CHILD"
	envDir   = "AMO_RECOVER_DIR"
	envJB    = "AMO_RECOVER_JOURNAL_BATCH"
)

func main() {
	if os.Getenv(envChild) != "" {
		childMain() // never returns
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "recover:", err)
		os.Exit(1)
	}
}

func config(dir string, journalBatch int) atmostonce.DispatcherConfig {
	return atmostonce.DispatcherConfig{
		Shards:          1,
		WorkersPerShard: workers,
		MaxBatch:        512,
		Backend:         "mmap:" + filepath.Join(dir, "regs"),
		JournalBatch:    journalBatch,
		MaxJobs:         totalJobs,
	}
}

// appendLog appends one performed-job record; O_APPEND keeps records
// intact even while m workers log concurrently.
func appendLog(f *os.File, id int) {
	if _, err := fmt.Fprintf(f, "%d\n", id); err != nil {
		panic(err)
	}
}

// childMain is the doomed incarnation: submit the whole stream, let the
// dispatcher perform killAfter jobs, freeze every worker inside a
// payload, then die without any cleanup.
func childMain() {
	dir := os.Getenv(envDir)
	jb, err := strconv.Atoi(os.Getenv(envJB))
	if err != nil {
		fatal(fmt.Errorf("bad %s: %w", envJB, err))
	}
	logF, err := os.OpenFile(filepath.Join(dir, "performed.log"), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fatal(err)
	}
	d, err := atmostonce.NewDispatcher(config(dir, jb))
	if err != nil {
		fatal(err)
	}

	var performed, frozen atomic.Int64
	freeze := make(chan struct{}) // never closed; the kill releases it
	fns := make([]func(), totalJobs)
	for i := range fns {
		id := i + 1
		fns[i] = func() {
			appendLog(logF, id) // the job's observable effect
			if performed.Add(1) >= killAfter {
				// Park this worker inside the payload: its journal record
				// and its log record are both already written, so dying
				// here is an action-boundary crash.
				frozen.Add(1)
				<-freeze
			}
		}
	}
	if _, err := d.SubmitBatch(fns); err != nil {
		fatal(err)
	}
	// Wait until every worker is frozen mid-round, flush the mapping for
	// good measure (same-machine recovery reads the page cache either
	// way), and die.
	for deadline := time.Now().Add(20 * time.Second); frozen.Load() < workers; {
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("workers never froze: %d/%d", frozen.Load(), workers))
		}
		runtime.Gosched()
	}
	if err := d.Sync(); err != nil {
		fatal(err)
	}
	logF.Sync()
	os.Exit(crashExit) // no Close, no drain: this is the crash
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "recover (child):", err)
	os.Exit(1)
}

func run() error {
	if err := runScenario(1); err != nil {
		return fmt.Errorf("journal-per-job: %w", err)
	}
	if err := runScenario(groupBatch); err != nil {
		return fmt.Errorf("group-commit (JournalBatch=%d): %w", groupBatch, err)
	}
	return nil
}

// runScenario kills a child mid-stream and recovers, at one JournalBatch
// setting. jb=1 demands zero loss (the kill lands at action boundaries);
// jb>1 allows the group-commit crash window — journaled claims whose
// payloads never ran — but bounds it at jb-1 per worker and still
// demands zero duplicates.
func runScenario(jb int) error {
	fmt.Printf("--- JournalBatch=%d ---\n", jb)
	dir, err := os.MkdirTemp("", "amo-recover-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Incarnation 1: run ourselves as the child and let it crash.
	self, err := os.Executable()
	if err != nil {
		return err
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(), envChild+"=1", envDir+"="+dir, envJB+"="+strconv.Itoa(jb))
	cmd.Stderr = os.Stderr
	err = cmd.Run()
	var ee *exec.ExitError
	switch {
	case err == nil:
		return fmt.Errorf("child exited cleanly; it was supposed to crash")
	case errors.As(err, &ee) && ee.ExitCode() == crashExit:
		// Crashed as planned, mid-round.
	default:
		return fmt.Errorf("child failed: %w", err)
	}
	crashed, err := readLog(dir)
	if err != nil {
		return err
	}
	fmt.Printf("child killed mid-round after performing %d of %d jobs\n", len(crashed), totalJobs)

	// Incarnation 2: reopen the same register files and re-submit the
	// identical stream. Recovery resolves everything the child already
	// performed; the rest — including the round the kill cut off — runs
	// exactly once.
	logF, err := os.OpenFile(filepath.Join(dir, "performed.log"), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer logF.Close()
	d, err := atmostonce.NewDispatcher(config(dir, jb))
	if err != nil {
		return err
	}
	defer d.Close()
	fns := make([]func(), totalJobs)
	for i := range fns {
		id := i + 1
		fns[i] = func() { appendLog(logF, id) }
	}
	if _, err := d.SubmitBatch(fns); err != nil {
		return err
	}
	d.Flush()
	st := d.Stats()
	if err := d.Close(); err != nil {
		return err
	}

	// The verdict comes from the log: every id exactly once, across both
	// incarnations.
	counts, err := readLog(dir)
	if err != nil {
		return err
	}
	dup, lost := 0, 0
	for id := 1; id <= totalJobs; id++ {
		switch counts[id] {
		case 1:
		case 0:
			lost++
		default:
			dup++
		}
	}
	fmt.Printf("restart recovered %d journaled jobs, performed the remaining %d\n",
		st.Recovered, st.Performed-st.Recovered)
	fmt.Printf("after recovery: %d duplicates, %d lost, %d/%d jobs done exactly once\n",
		dup, lost, totalJobs-dup-lost, totalJobs)

	// The journal is the recovery oracle: every record it held must match
	// a child log line (payload ran) or a counted loss (claim journaled,
	// payload never ran — possible only in the group-commit window).
	if st.Recovered != uint64(len(crashed)+lost) {
		return fmt.Errorf("recovered %d journaled jobs, but the child logged %d and %d were lost",
			st.Recovered, len(crashed), lost)
	}
	if dup > 0 {
		return fmt.Errorf("at-most-once violated across the crash: %d duplicates", dup)
	}
	if maxLost := workers * (jb - 1); lost > maxLost {
		return fmt.Errorf("%d jobs lost across the crash; the group-commit window bounds loss at %d (%d workers × (JournalBatch-1))",
			lost, maxLost, workers)
	}
	return nil
}

// readLog returns performed-counts per job id (index 0 unused).
func readLog(dir string) (map[int]int, error) {
	f, err := os.Open(filepath.Join(dir, "performed.log"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	counts := make(map[int]int, totalJobs)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		id, err := strconv.Atoi(sc.Text())
		if err != nil || id < 1 || id > totalJobs {
			return nil, fmt.Errorf("corrupt log record %q", sc.Text())
		}
		counts[id]++
	}
	return counts, sc.Err()
}
