package main

import (
	"os"
	"runtime"
	"testing"
)

// TestMain doubles as the child entry point: when the example re-executes
// itself (os.Executable is the test binary here), the child env flag
// routes into childMain instead of the test runner.
func TestMain(m *testing.M) {
	if os.Getenv(envChild) != "" {
		childMain() // never returns
	}
	os.Exit(m.Run())
}

// TestRun executes the example end to end — child killed mid-round,
// parent recovers on the same mmap register files; examples double as
// integration tests of the public API.
func TestRun(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("mmap backend requires linux")
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
