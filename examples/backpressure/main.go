// Backpressure: what a saturated dispatcher does to its producers.
//
// A producer that submits faster than the workers can perform has to put
// the overflow SOMEWHERE. Before bounded queues, the dispatcher's rings
// simply grew — a submission spike became resident memory until the
// backlog drained. With DispatcherConfig.QueueDepth the overflow stops at
// the queue bound and SubmitPolicy picks who pays:
//
//   - Block (default): the submit call parks until a round frees space.
//     The producer is throttled to the consumption rate, memory stays
//     flat, and Stats.SubmitBlockedNanos shows the price.
//   - FailFast: the submit call returns ErrQueueFull immediately — no
//     job id is consumed — and the producer decides: retry, shed, or
//     divert. Load shedding becomes an explicit, observable event.
//
// This example overdrives both policies with deliberately slow payloads
// and a tiny queue, then proves the invariants: every accepted job ran
// exactly once, queues never exceeded their bound, and the futures of
// every accepted async submission resolved.
//
// Run with: go run ./examples/backpressure
package main

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"atmostonce"
)

const (
	queueDepth = 32
	jobs       = 2000
	payload    = 20 * time.Microsecond
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "backpressure:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := blockPolicy(); err != nil {
		return err
	}
	return failFastPolicy()
}

// newDispatcher builds the overdriven shape shared by both phases.
func newDispatcher(policy atmostonce.SubmitPolicy) (*atmostonce.Dispatcher, error) {
	return atmostonce.NewDispatcher(atmostonce.DispatcherConfig{
		Shards:          2,
		WorkersPerShard: 2,
		MaxBatch:        16,
		QueueDepth:      queueDepth,
		SubmitPolicy:    policy,
	})
}

// blockPolicy: the producer runs flat out; the bounded queue throttles it.
func blockPolicy() error {
	d, err := newDispatcher(atmostonce.Block)
	if err != nil {
		return err
	}
	defer d.Close()

	var done, maxDepth atomic.Int64
	start := time.Now()
	for i := 0; i < jobs; i++ {
		if _, err := d.SubmitCallback(
			func() { time.Sleep(payload) },
			func(atmostonce.JobResult) { done.Add(1) },
		); err != nil {
			return err
		}
		if i%64 == 0 {
			for _, sh := range d.Stats().Shards {
				if int64(sh.QueueDepth) > maxDepth.Load() {
					maxDepth.Store(int64(sh.QueueDepth))
				}
			}
		}
	}
	submitted := time.Since(start)
	d.Flush()
	st := d.Stats()

	fmt.Printf("Block policy: %d jobs through depth-%d queues\n", jobs, queueDepth)
	fmt.Printf("  submit loop took %v (throttled to consumption; %.1fms spent blocked)\n",
		submitted.Round(time.Millisecond), float64(st.SubmitBlockedNanos)/1e6)
	fmt.Printf("  deepest queue observed: %d (bound %d); rounds %d, stolen %d\n",
		maxDepth.Load(), queueDepth, st.Rounds, st.StolenJobs)

	if st.SubmitBlockedNanos == 0 {
		return errors.New("Block: producer was never throttled — overdrive failed")
	}
	if maxDepth.Load() > queueDepth {
		return fmt.Errorf("Block: queue depth %d exceeded bound %d", maxDepth.Load(), queueDepth)
	}
	if got := done.Load(); got != jobs {
		return fmt.Errorf("Block: %d of %d futures resolved", got, jobs)
	}
	if st.Duplicates != 0 {
		return fmt.Errorf("Block: %d duplicates", st.Duplicates)
	}
	return nil
}

// failFastPolicy: the producer keeps its pace and sheds load instead,
// retrying rejected jobs until everything is eventually accepted.
func failFastPolicy() error {
	d, err := newDispatcher(atmostonce.FailFast)
	if err != nil {
		return err
	}
	defer d.Close()

	var done atomic.Int64
	rejected, accepted := 0, 0
	for accepted < jobs {
		_, err := d.SubmitCallback(
			func() { time.Sleep(payload) },
			func(atmostonce.JobResult) { done.Add(1) },
		)
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, atmostonce.ErrQueueFull):
			rejected++
			time.Sleep(50 * time.Microsecond) // shed: back off and retry
		default:
			return err
		}
	}
	d.Flush()
	st := d.Stats()

	fmt.Printf("FailFast policy: %d accepted, %d rejected with ErrQueueFull (retried)\n",
		accepted, rejected)
	fmt.Printf("  ids stayed dense across rejections: submitted=%d performed=%d, duplicates %d\n",
		st.Submitted, st.Performed, st.Duplicates)

	if rejected == 0 {
		return errors.New("FailFast: queue never rejected — overdrive failed")
	}
	if st.Submitted != uint64(jobs) || st.Performed != uint64(jobs) {
		return fmt.Errorf("FailFast: submitted %d performed %d, want %d (rejections must consume nothing)",
			st.Submitted, st.Performed, jobs)
	}
	if got := done.Load(); got != jobs {
		return fmt.Errorf("FailFast: %d of %d futures resolved", got, jobs)
	}
	if st.Duplicates != 0 {
		return fmt.Errorf("FailFast: %d duplicates", st.Duplicates)
	}
	return nil
}
