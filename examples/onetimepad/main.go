// One-time pad expenditure: the Di Crescenzo–Kiayias application the
// paper cites ([11]): multiple communicating parties share a pre-agreed
// random pad, and perfect secrecy holds ONLY if every pad page is used to
// encrypt at most one message. Concurrent senders therefore need
// at-most-once semantics on pad pages.
//
// Here m sender threads drain a queue of messages, each encrypting with
// the pad page the at-most-once layer hands them (the "job" is the page
// index). A page used twice would let an eavesdropper XOR the two
// ciphertexts and cancel the key — the demo checks no page is ever
// reused.
//
// Run with: go run ./examples/onetimepad
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"

	"atmostonce"
)

const (
	pages   = 512 // pad pages, one message each
	senders = 4
	pageLen = 32 // bytes per page
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "onetimepad:", err)
		os.Exit(1)
	}
}

func run() error {
	// The shared pad: pages of random key material, agreed in advance.
	rng := rand.New(rand.NewSource(11))
	pad := make([][]byte, pages+1)
	for i := range pad {
		pad[i] = make([]byte, pageLen)
		rng.Read(pad[i])
	}

	var (
		mu          sync.Mutex
		ciphertexts = make(map[int][]byte) // page -> ciphertext
		used        = make(map[int]int)    // page -> use count
	)

	summary, err := atmostonce.Run(
		atmostonce.Config{Jobs: pages, Workers: senders, Jitter: true, Seed: 7},
		func(sender, page int) {
			// Encrypt one message with this page. The page index IS the
			// at-most-once job: the library guarantees no other sender
			// spends the same key material.
			msg := fmt.Sprintf("sender %d message on page %d padding padding", sender, page)
			ct := xor(pad[page], []byte(msg))
			mu.Lock()
			ciphertexts[page] = ct
			used[page]++
			mu.Unlock()
		},
	)
	if err != nil {
		return err
	}

	reused := 0
	for _, c := range used {
		if c > 1 {
			reused++
		}
	}
	fmt.Printf("messages encrypted:  %d\n", len(ciphertexts))
	fmt.Printf("pad pages unspent:   %d (usable next session)\n", summary.Remaining)
	fmt.Printf("pad pages reused:    %d\n", reused)
	if reused > 0 {
		return fmt.Errorf("SECRECY VIOLATION: pad page reused — ciphertext XOR leaks plaintext")
	}
	fmt.Println("perfect secrecy preserved: every pad page spent at most once")
	return nil
}

// xor combines key material with a message (truncating to the shorter).
func xor(key, msg []byte) []byte {
	n := len(key)
	if len(msg) < n {
		n = len(msg)
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = key[i] ^ msg[i]
	}
	return out
}
