// Fenced failover: at-most-once across dispatcher takeover, over the
// network — with the full forensic trail.
//
// Two dispatcher processes share one register namespace on an amo-regd
// register server. Process A starts the job stream, freezes with a
// round genuinely in flight (every worker parked inside a payload whose
// journal record the server has already acknowledged) and is then
// SIGSTOPped — the classic "stalled but not dead" failure: a GC pause,
// a VM migration, a partition. Its writer lease expires; process B,
// which has been waiting on the lease, takes over at the next fencing
// epoch, recovers A's journal over the wire, re-submits the identical
// stream and finishes it. Then A is SIGCONTed: it wakes up believing it
// is still the writer, and every register operation it attempts is
// rejected by the server as stale-epoch — the client panics (fencing
// suicide) before any payload can run twice. Every job appends its id
// to a shared log when it executes, so the verdict is counted from the
// log itself: zero duplicates, zero losses.
//
// The forensic layer (DESIGN.md §13) is exercised end to end: both
// children sample job timelines and snapshot their /tracez endpoint to
// disk, the in-process register server traces the journal writes it
// acknowledges, and the parent stitches all three views into one
// cross-process timeline per job (obs.StitchTimelines), checks the
// at-most-once trace grammar on the merged timelines — started at most
// once ACROSS incarnations — and prints the stitched timeline of one
// recovered job. A's death is verified structurally: its stderr must
// carry a flight-recorder dump (AMO-FLIGHT-DUMP) whose fatal event says
// fenced=true and names both epochs.
//
// Run with: go run ./examples/failover
// Point it at an external server with AMO_REGD_ADDR=host:port (the
// server-side trace view is skipped there; stitching uses A and B).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"atmostonce"
	"atmostonce/internal/netmem"
	"atmostonce/internal/obs"
	"atmostonce/internal/obs/eventlog"
)

const (
	totalJobs = 1500
	workers   = 4
	maxBatch  = 512
	killAfter = 40 // payloads A runs before freezing mid-round

	// traceRate samples half the job ids into each process's tracer.
	// The hash is deterministic on the id, so A, B and the server all
	// sample the SAME ids — which is what makes their per-process
	// fragments stitch into complete cross-incarnation timelines.
	traceRate = 0.5

	// leaseTTL is the writer lease; A's expires while it is stopped.
	// stallThreshold is A's self-detection of the stop (a wall-clock
	// discontinuity far above any scheduler hiccup), and stopFloor is
	// how long the parent keeps A stopped — comfortably above the
	// threshold, so the detector cannot fire while A still holds the
	// lease.
	leaseTTL       = 750 * time.Millisecond
	stallThreshold = 3 * time.Second
	stopFloor      = 6 * time.Second

	notFencedExit = 3 // A: fencing never killed us (failure)

	envRole = "AMO_FAILOVER_ROLE"
	envDir  = "AMO_FAILOVER_DIR"
	envSpec = "AMO_FAILOVER_SPEC"
)

func main() {
	switch os.Getenv(envRole) {
	case "A":
		childAMain() // never returns
	case "B":
		childBMain() // never returns
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failover:", err)
		os.Exit(1)
	}
}

func config(spec string) atmostonce.DispatcherConfig {
	return atmostonce.DispatcherConfig{
		Shards:          1,
		WorkersPerShard: workers,
		MaxBatch:        maxBatch,
		Backend:         spec,
		MaxJobs:         totalJobs,
		// Each child serves its own ops endpoint so it can snapshot its
		// /tracez view to disk for the parent to stitch.
		MetricsAddr:     "127.0.0.1:0",
		TraceSampleRate: traceRate,
	}
}

// snapshotTracez fetches the child's own /tracez document and writes it
// where the parent will look for it. Best-effort by design on the
// incumbent: it runs moments before a deliberate crash.
func snapshotTracez(d *atmostonce.Dispatcher, dir, name string) error {
	addr := d.OpsAddr()
	if addr == "" {
		return fmt.Errorf("no ops endpoint bound")
	}
	resp, err := http.Get("http://" + addr + "/tracez")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), body, 0o644)
}

// appendLog appends one performed-job record; O_APPEND keeps records
// intact under concurrent workers.
func appendLog(f *os.File, id int) {
	if _, err := fmt.Fprintf(f, "%d\n", id); err != nil {
		panic(err)
	}
}

func openLog(dir string) *os.File {
	f, err := os.OpenFile(filepath.Join(dir, "performed.log"), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fatal("A", err)
	}
	return f
}

func fatal(role string, err error) {
	fmt.Fprintf(os.Stderr, "failover (child %s): %v\n", role, err)
	os.Exit(1)
}

// childAMain is the incumbent: submit the stream, perform killAfter
// payloads, park every worker inside a payload, announce FROZEN, and
// wait to be stopped. After the SIGCONT it detects the wall-clock gap,
// releases the workers and lets the fencing kill it: its lease epoch is
// stale by then, so its first register operation — the next job's
// journal write, a runtime register write, or the background lease
// renewal, whichever lands first — panics the process before any
// payload can run a second time. The trace snapshot is taken at the
// freeze, i.e. the last instant this incarnation's view exists.
func childAMain() {
	dir, spec := os.Getenv(envDir), os.Getenv(envSpec)
	logF := openLog(dir)
	d, err := atmostonce.NewDispatcher(config(spec))
	if err != nil {
		fatal("A", err)
	}

	var performed, frozen atomic.Int64
	gate := make(chan struct{})
	var gateOnce sync.Once
	fns := make([]func(), totalJobs)
	for i := range fns {
		id := i + 1
		fns[i] = func() {
			appendLog(logF, id) // the job's observable effect
			if performed.Add(1) >= killAfter {
				// Park here: this payload's journal record was
				// acknowledged by the server before it ran, and its log
				// record is written, so freezing now is an
				// action-boundary stall.
				frozen.Add(1)
				<-gate
			}
		}
	}
	if _, err := d.SubmitBatch(fns); err != nil {
		fatal("A", err)
	}
	for deadline := time.Now().Add(20 * time.Second); frozen.Load() < workers; {
		if time.Now().After(deadline) {
			fatal("A", fmt.Errorf("workers never froze: %d/%d", frozen.Load(), workers))
		}
		time.Sleep(time.Millisecond)
	}
	logF.Sync()
	if err := snapshotTracez(d, dir, "trace-A.json"); err != nil {
		fatal("A", fmt.Errorf("trace snapshot: %w", err))
	}
	fmt.Println("FROZEN") // the parent SIGSTOPs us on this line

	// Stall detector: a sleep that "took" longer than stallThreshold
	// means we were stopped and resumed — the moral equivalent of coming
	// back from a long GC pause. Release the workers and let them
	// discover the fence.
	for {
		before := time.Now()
		time.Sleep(50 * time.Millisecond)
		if time.Since(before) > stallThreshold {
			break
		}
	}
	gateOnce.Do(func() { close(gate) })

	// The fence must kill this process (panic in a worker or the lease
	// renewer, exit code 2). Surviving means fencing failed.
	time.Sleep(30 * time.Second)
	os.Exit(notFencedExit)
}

// childBMain is the successor: open the same namespace (blocking on the
// writer lease until A's expires), recover the journal over the
// network, re-submit the identical stream and finish it, snapshotting
// its trace view before shutting down.
func childBMain() {
	dir, spec := os.Getenv(envDir), os.Getenv(envSpec)
	logF := openLog(dir)
	d, err := atmostonce.NewDispatcher(config(spec)) // waits out A's lease here
	if err != nil {
		fatal("B", err)
	}
	fns := make([]func(), totalJobs)
	for i := range fns {
		id := i + 1
		fns[i] = func() { appendLog(logF, id) }
	}
	if _, err := d.SubmitBatch(fns); err != nil {
		fatal("B", err)
	}
	d.Flush()
	st := d.Stats()
	if err := snapshotTracez(d, dir, "trace-B.json"); err != nil {
		fatal("B", fmt.Errorf("trace snapshot: %w", err))
	}
	if err := d.Close(); err != nil {
		fatal("B", err)
	}
	logF.Close()
	fmt.Printf("RECOVERED %d\n", st.Recovered)
	os.Exit(0)
}

func run() error {
	dir, err := os.MkdirTemp("", "amo-failover-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// The register server: external (AMO_REGD_ADDR) or in-process. The
	// in-process server traces every journal write it acknowledges —
	// the third view stitched into the forensic timeline.
	addr := os.Getenv("AMO_REGD_ADDR")
	var srvTracer *obs.Tracer
	if addr == "" {
		srvTracer = obs.NewTracer(traceRate, 0)
		srv := netmem.NewServer(netmem.ServerOptions{Tracer: srvTracer})
		if addr, err = srv.Listen("127.0.0.1:0"); err != nil {
			return err
		}
		defer srv.Close()
	}
	ns := fmt.Sprintf("failover-%d-%d", os.Getpid(), time.Now().UnixNano()&0xffffff)
	spec := fmt.Sprintf("net:%s/%s?ttl=%s&acquiretimeout=30s", addr, ns, leaseTTL)
	self, err := os.Executable()
	if err != nil {
		return err
	}
	child := func(role string) *exec.Cmd {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(), envRole+"="+role, envDir+"="+dir, envSpec+"="+spec)
		return cmd
	}

	// Incarnation A: run until frozen mid-round, then stop it cold.
	a := child("A")
	aOut, err := a.StdoutPipe()
	if err != nil {
		return err
	}
	var aErr bytes.Buffer
	a.Stderr = &aErr
	if err := a.Start(); err != nil {
		return err
	}
	frozen := make(chan bool, 1)
	go func() {
		sc := bufio.NewScanner(aOut)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) == "FROZEN" {
				frozen <- true
				return
			}
		}
		frozen <- false
	}()
	select {
	case ok := <-frozen:
		if !ok {
			a.Wait()
			return fmt.Errorf("A exited before freezing; stderr:\n%s", aErr.String())
		}
	case <-time.After(60 * time.Second):
		a.Process.Kill()
		return fmt.Errorf("A never froze")
	}
	if err := a.Process.Signal(syscall.SIGSTOP); err != nil {
		return err
	}
	stopped := time.Now()
	crashed, err := readLog(dir)
	if err != nil {
		return err
	}
	fmt.Printf("A frozen mid-round after performing %d of %d jobs; SIGSTOPped, lease expiring\n",
		len(crashed), totalJobs)

	// Incarnation B: waits out the lease, takes over, finishes.
	b := child("B")
	bOut := &bytes.Buffer{}
	b.Stdout = bOut
	b.Stderr = os.Stderr
	bStart := time.Now()
	if err := b.Run(); err != nil {
		return fmt.Errorf("B failed: %w", err)
	}
	recovered, err := parseRecovered(bOut.String())
	if err != nil {
		return err
	}
	fmt.Printf("B took over after %s wait, recovered %d journaled jobs over the network, performed the remaining %d\n",
		time.Since(bStart).Round(time.Millisecond), recovered, totalJobs-recovered)
	if recovered != len(crashed) {
		return fmt.Errorf("B recovered %d jobs, but A logged %d before the stop", recovered, len(crashed))
	}

	// Wake the zombie. Keep it stopped past its own stall threshold
	// first, so its detector cannot have fired while it still held the
	// lease.
	if rest := stopFloor - time.Since(stopped); rest > 0 {
		time.Sleep(rest)
	}
	if err := a.Process.Signal(syscall.SIGCONT); err != nil {
		return err
	}
	werr := a.Wait()
	var ee *exec.ExitError
	switch {
	case werr == nil:
		return fmt.Errorf("A exited cleanly after takeover; it was supposed to die fenced")
	case errors.As(werr, &ee) && ee.ExitCode() == notFencedExit:
		return fmt.Errorf("A was never fenced; stderr:\n%s", aErr.String())
	case errors.As(werr, &ee):
		// Verify the death STRUCTURALLY: the zombie must have left a
		// flight-recorder dump whose fatal event says fenced, with both
		// epochs (its own stale stamp and the lease's current one) in
		// the rejection text.
		if err := checkFlightDump(aErr.String()); err != nil {
			return fmt.Errorf("A died (code %d) but its flight-recorder dump is wrong: %w; stderr:\n%s",
				ee.ExitCode(), err, aErr.String())
		}
	default:
		return fmt.Errorf("waiting for A: %w", werr)
	}
	fmt.Printf("A resumed as a zombie and was fenced by the server (exit %d)\n", ee.ExitCode())

	// Stitch the per-process trace views into cross-incarnation
	// timelines and check the merged at-most-once grammar.
	if err := stitchAndCheck(dir, srvTracer); err != nil {
		return err
	}

	// The verdict comes from the log: every id exactly once, across the
	// freeze, the takeover and the zombie's death.
	counts, err := readLog(dir)
	if err != nil {
		return err
	}
	dup, lost := 0, 0
	for id := 1; id <= totalJobs; id++ {
		switch counts[id] {
		case 1:
		case 0:
			lost++
		default:
			dup++
		}
	}
	fmt.Printf("after failover: %d duplicates, %d lost, %d/%d jobs done exactly once\n",
		dup, lost, totalJobs-dup-lost, totalJobs)
	if dup > 0 {
		return fmt.Errorf("at-most-once violated across the failover: %d duplicates", dup)
	}
	if lost > 0 {
		return fmt.Errorf("%d jobs lost across the failover", lost)
	}
	return nil
}

// checkFlightDump finds the AMO-FLIGHT-DUMP line in the zombie's stderr
// and asserts its fatal event records a fence: fenced=true, an epoch
// attr, and the server's rejection text carrying the current lease
// epoch ("lease is at N").
func checkFlightDump(stderr string) error {
	var dump eventlog.FlightDump
	found := false
	for _, line := range strings.Split(stderr, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), strings.TrimSpace(eventlog.DumpPrefix)); ok {
			if err := json.Unmarshal([]byte(rest), &dump); err != nil {
				return fmt.Errorf("unparseable flight dump: %v", err)
			}
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("no %s line on stderr", strings.TrimSpace(eventlog.DumpPrefix))
	}
	for _, ev := range dump.Events {
		if ev.Event != "netmem_client_fatal" {
			continue
		}
		if fenced, _ := ev.Attrs["fenced"].(bool); !fenced {
			return fmt.Errorf("fatal event has fenced=%v", ev.Attrs["fenced"])
		}
		if _, ok := ev.Attrs["epoch"]; !ok {
			return fmt.Errorf("fatal event carries no epoch")
		}
		errText, _ := ev.Attrs["err"].(string)
		if !strings.Contains(errText, "lease is at") {
			return fmt.Errorf("fatal event names no successor epoch: %q", errText)
		}
		fmt.Printf("A's flight-recorder dump contains the fencing event: stale epoch %v, rejection %q (incarnation %s, %d events)\n",
			ev.Attrs["epoch"], errText, dump.Incarnation, len(dump.Events))
		return nil
	}
	return fmt.Errorf("flight dump has no netmem_client_fatal event (%d events)", len(dump.Events))
}

// stitchAndCheck merges the trace views — incumbent A (snapshotted at
// its freeze), successor B (snapshotted after its flush) and, when the
// register server ran in-process, the server's journal-write
// observations — into per-job cross-incarnation timelines, asserts the
// merged at-most-once grammar on every one, and prints the stitched
// timeline of one recovered job as the forensic exhibit.
func stitchAndCheck(dir string, srvTracer *obs.Tracer) error {
	aDoc, err := readTracezFile(filepath.Join(dir, "trace-A.json"))
	if err != nil {
		return fmt.Errorf("incumbent trace: %w", err)
	}
	bDoc, err := readTracezFile(filepath.Join(dir, "trace-B.json"))
	if err != nil {
		return fmt.Errorf("successor trace: %w", err)
	}
	docs := []obs.TracezDoc{aDoc, bDoc}
	role := map[string]string{aDoc.Incarnation: "incumbent", bDoc.Incarnation: "successor"}
	if srvTracer != nil {
		srvDoc := obs.NewTracezDoc(srvTracer)
		role[srvDoc.Incarnation] = "regd"
		docs = append(docs, srvDoc)
	}

	jobs := obs.StitchTimelines(docs...)
	if len(jobs) == 0 {
		return fmt.Errorf("stitching produced no timelines")
	}
	for _, j := range jobs {
		if err := obs.CheckStitched(j); err != nil {
			return fmt.Errorf("merged trace grammar violated: %w", err)
		}
	}
	fmt.Printf("merged trace grammar holds for all %d stitched jobs (started ≤ 1 across incarnations)\n", len(jobs))

	// The exhibit: a job that A started and journaled, and B resolved
	// from the journal — its one timeline spans both incarnations.
	for _, j := range jobs {
		incs := j.Incarnations()
		recovered, spansBoth := false, false
		seenA, seenB := false, false
		for _, inc := range incs {
			seenA = seenA || inc == aDoc.Incarnation
			seenB = seenB || inc == bDoc.Incarnation
		}
		spansBoth = seenA && seenB
		for _, e := range j.Events {
			if e.Event == "recovered" {
				recovered = true
			}
		}
		if !recovered || !spansBoth {
			continue
		}
		fmt.Printf("stitched timeline for recovered job %d spans %d incarnations (incumbent %s -> successor %s):\n",
			j.ID, len(incs), aDoc.Incarnation, bDoc.Incarnation)
		for _, e := range j.Events {
			who := role[e.Inc]
			if who == "" {
				who = "?"
			}
			shard := strconv.Itoa(int(e.Shard))
			if e.Shard < 0 {
				shard = "server"
			}
			fmt.Printf("  %+12.0fµs  %-10s %-9s  inc %s (%s)\n", e.TUs, e.Event, shard, e.Inc, who)
		}
		return nil
	}
	return fmt.Errorf("no stitched timeline spans both incarnations with a recovered event (%d jobs)", len(jobs))
}

func readTracezFile(path string) (obs.TracezDoc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return obs.TracezDoc{}, err
	}
	return obs.ParseTracezDoc(b)
}

func parseRecovered(out string) (int, error) {
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "RECOVERED "); ok {
			return strconv.Atoi(rest)
		}
	}
	return 0, fmt.Errorf("B reported no RECOVERED line; output:\n%s", out)
}

// readLog returns performed-counts per job id (index 0 unused).
func readLog(dir string) (map[int]int, error) {
	f, err := os.Open(filepath.Join(dir, "performed.log"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	counts := make(map[int]int, totalJobs)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		id, err := strconv.Atoi(sc.Text())
		if err != nil || id < 1 || id > totalJobs {
			return nil, fmt.Errorf("corrupt log record %q", sc.Text())
		}
		counts[id]++
	}
	return counts, sc.Err()
}
