package main

import (
	"os"
	"runtime"
	"testing"
)

// TestMain doubles as the child entry point: when the example
// re-executes itself (os.Executable is the test binary here), the role
// env var routes into the child mains instead of the test runner.
func TestMain(m *testing.M) {
	switch os.Getenv(envRole) {
	case "A":
		childAMain() // never returns
	case "B":
		childBMain() // never returns
	}
	os.Exit(m.Run())
}

// TestRun executes the example end to end — incumbent SIGSTOPped
// mid-round, successor waits out the lease and recovers over the
// network, zombie fenced on resume; examples double as integration
// tests of the public API. The SIGSTOP choreography keeps the zombie
// stopped for several seconds, so this is deliberately a slow test.
func TestRun(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("failover example drives SIGSTOP/SIGCONT process control; linux only")
	}
	if testing.Short() {
		t.Skip("multi-process failover takes ~10s; skipped in short mode")
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
