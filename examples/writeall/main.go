// Write-All: the §7 application — initialize every cell of a shared
// array using m crash-prone workers (the Kanellakis–Shvartsman problem).
// Unlike the at-most-once examples, completion is guaranteed: the
// WA_IterativeKK(ε) algorithm re-executes residual cells, trading a few
// redundant writes for certainty, with total work O(n + m^{3+ε}·log n)
// instead of the trivial O(n·m).
//
// Run with: go run ./examples/writeall
package main

import (
	"fmt"
	"os"
	"sync/atomic"

	"atmostonce"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "writeall:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		cells   = 4096
		workers = 8
	)
	array := make([]atomic.Int64, cells+1)

	redundant, err := atmostonce.WriteAll(cells, workers, func(worker, cell int) {
		array[cell].Store(1)
	})
	if err != nil {
		return err
	}

	unwritten := 0
	for c := 1; c <= cells; c++ {
		if array[c].Load() != 1 {
			unwritten++
		}
	}
	fmt.Printf("cells written:     %d / %d\n", cells-unwritten, cells)
	fmt.Printf("redundant writes:  %d (%.2f%% overhead vs the n·m = %d of the trivial algorithm)\n",
		redundant, 100*float64(redundant)/float64(cells), cells*workers)
	if unwritten > 0 {
		return fmt.Errorf("write-all incomplete: %d cells unwritten", unwritten)
	}
	fmt.Println("write-all complete: every cell initialized")
	return nil
}
