// Quickstart: perform 1000 jobs on 8 workers with at-most-once semantics.
//
// The library guarantees (Lemma 4.1) that no job runs twice, and
// (Theorem 4.4) that at most β+m−2 = 2m−2 jobs are left unperformed even
// under worst-case scheduling — here, with a healthy scheduler, the
// remainder is usually far smaller.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"sync/atomic"

	"atmostonce"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		jobs    = 1000
		workers = 8
	)
	var executions [jobs + 1]atomic.Int32

	summary, err := atmostonce.Run(
		atmostonce.Config{Jobs: jobs, Workers: workers},
		func(worker, job int) {
			// This closure is the "job". The library promises it runs at
			// most once per job id, across all workers, without locks.
			executions[job].Add(1)
		},
	)
	if err != nil {
		return err
	}

	doubles := 0
	for j := 1; j <= jobs; j++ {
		if executions[j].Load() > 1 {
			doubles++
		}
	}
	fmt.Printf("jobs performed:  %d / %d\n", summary.Performed, jobs)
	fmt.Printf("jobs remaining:  %d (≤ 2m−2 = %d guaranteed worst case)\n",
		summary.Remaining, 2*workers-2)
	fmt.Printf("double runs:     %d (always 0)\n", doubles)
	if doubles > 0 || summary.Duplicates > 0 {
		return fmt.Errorf("at-most-once violated")
	}
	return nil
}
