// Quickstart: perform 1000 jobs with at-most-once semantics, twice —
// first through the paper's one-shot Run API, then through the
// streaming Dispatcher with the observability layer switched on.
//
// The library guarantees (Lemma 4.1) that no job runs twice, and
// (Theorem 4.4) that at most β+m−2 = 2m−2 jobs are left unperformed even
// under worst-case scheduling — here, with a healthy scheduler, the
// remainder is usually far smaller.
//
// The dispatcher half doubles as the observability quickstart: with
// AMO_METRICS_ADDR set it serves the ops endpoint (/metrics in
// Prometheus text format, /healthz, /statsz, /tracez, /debug/pprof/)
// and with AMO_METRICS_HOLD it stays alive that long so an external
// scraper can pull a live exposition — CI does exactly that.
//
// Run with:
//
//	go run ./examples/quickstart
//	AMO_METRICS_ADDR=127.0.0.1:9091 AMO_METRICS_HOLD=30s go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"atmostonce"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		jobs    = 1000
		workers = 8
	)
	var executions [jobs + 1]atomic.Int32

	summary, err := atmostonce.Run(
		atmostonce.Config{Jobs: jobs, Workers: workers},
		func(worker, job int) {
			// This closure is the "job". The library promises it runs at
			// most once per job id, across all workers, without locks.
			executions[job].Add(1)
		},
	)
	if err != nil {
		return err
	}

	doubles := 0
	for j := 1; j <= jobs; j++ {
		if executions[j].Load() > 1 {
			doubles++
		}
	}
	fmt.Printf("jobs performed:  %d / %d\n", summary.Performed, jobs)
	fmt.Printf("jobs remaining:  %d (≤ 2m−2 = %d guaranteed worst case)\n",
		summary.Remaining, 2*workers-2)
	fmt.Printf("double runs:     %d (always 0)\n", doubles)
	if doubles > 0 || summary.Duplicates > 0 {
		return fmt.Errorf("at-most-once violated")
	}

	// The same workload through the streaming Dispatcher, with the
	// observability layer on: the registry collects per-shard counters
	// and latency/round histograms, and AMO_METRICS_ADDR additionally
	// serves them over HTTP.
	d, err := atmostonce.NewDispatcher(atmostonce.DispatcherConfig{
		Shards:          2,
		WorkersPerShard: 4,
		Metrics:         true,
		MetricsAddr:     os.Getenv("AMO_METRICS_ADDR"),
		TraceSampleRate: 0.1,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	var performed atomic.Int64
	for i := 0; i < jobs; i++ {
		if _, err := d.Submit(func() { performed.Add(1) }); err != nil {
			return err
		}
	}
	d.Flush()
	st := d.Stats()
	fmt.Printf("\nstreaming dispatcher: %d jobs in %d rounds, %d duplicates\n",
		st.Performed, st.Rounds, st.Duplicates)
	if qs, ok := d.LatencyQuantiles(0.5, 0.99); ok {
		fmt.Printf("submit→done latency: p50 %s, p99 %s (1-in-16 sampled histogram)\n", qs[0], qs[1])
	}
	if st.Duplicates != 0 || performed.Load() != jobs {
		return fmt.Errorf("dispatcher at-most-once violated: %+v", st)
	}

	if addr := d.OpsAddr(); addr != "" {
		fmt.Printf("ops endpoint: http://%s/metrics\n", addr)
		if hold, err := time.ParseDuration(os.Getenv("AMO_METRICS_HOLD")); err == nil && hold > 0 {
			fmt.Printf("holding %s for scrapes...\n", hold)
			time.Sleep(hold)
		}
	}
	return nil
}
