// Retry rounds: draining the unavoidable remainder.
//
// Theorem 2.1 says NO wait-free at-most-once algorithm can guarantee all
// n jobs complete — up to β+m−2 stay behind (stuck behind announcements
// of crashed or slow workers). The standard operational answer is
// rounds: run, collect Summary.Unperformed, and run a fresh instance on
// just those jobs. Each round preserves at-most-once (fresh shared
// memory, disjoint job identities via an index mapping), so a job still
// executes at most once ACROSS rounds, and the remainder shrinks
// geometrically — usually to zero in two or three rounds.
//
// Run with: go run ./examples/retryrounds
package main

import (
	"fmt"
	"os"
	"sync/atomic"

	"atmostonce"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "retryrounds:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		jobs     = 2000
		workers  = 8
		maxRound = 5
	)
	executions := make([]atomic.Int32, jobs+1)

	// pending maps round-local ids (1..len) to original job ids.
	pending := make([]int, jobs)
	for i := range pending {
		pending[i] = i + 1
	}

	for round := 1; round <= maxRound && len(pending) > 0; round++ {
		batch := pending
		w := workers
		if len(batch) < w {
			w = len(batch) // a round needs n ≥ m
		}
		sum, err := atmostonce.Run(
			atmostonce.Config{Jobs: len(batch), Workers: w, Jitter: true, Seed: int64(round)},
			func(worker, local int) {
				executions[batch[local-1]].Add(1)
			},
		)
		if err != nil {
			return err
		}
		fmt.Printf("round %d: %4d jobs in, %4d done, %3d left\n",
			round, len(batch), sum.Performed, sum.Remaining)

		next := make([]int, 0, len(sum.Unperformed))
		for _, local := range sum.Unperformed {
			next = append(next, batch[local-1])
		}
		pending = next
	}

	doubles, missed := 0, len(pending)
	for j := 1; j <= jobs; j++ {
		if executions[j].Load() > 1 {
			doubles++
		}
	}
	fmt.Printf("after all rounds: %d unperformed, %d double executions\n", missed, doubles)
	if doubles > 0 {
		return fmt.Errorf("at-most-once violated across rounds")
	}
	if missed > 0 {
		fmt.Println("note: a remainder can persist only if every round hits its worst case")
	}
	return nil
}
