// Streaming dispatcher: continuous at-most-once execution.
//
// Where examples/retryrounds drains ONE fixed batch with hand-rolled
// retry rounds, the Dispatcher makes rounds a service: producers submit
// jobs continuously, the engine batches them into rounds across several
// independent KKβ shards, and whatever a round leaves unperformed (some
// jobs always are — Theorem 2.1) is carried into the shard's next round.
// The at-most-once guarantee holds end to end, even while injected
// crashes keep killing workers: a job is requeued only when no worker
// performed it, so nothing ever runs twice and nothing is lost.
//
// Run with: go run ./examples/stream
package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"atmostonce"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stream:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		producers    = 4
		jobsPerChunk = 500
		chunks       = 25 // per producer: 4×25×500 = 50 000 jobs total
		totalJobs    = producers * chunks * jobsPerChunk
	)

	d, err := atmostonce.NewDispatcher(atmostonce.DispatcherConfig{
		Shards:          4,
		WorkersPerShard: 4,
		MaxBatch:        512,
		Jitter:          true,
		Seed:            1,
		// Chaos: for the first 10 rounds of every shard, two of its four
		// workers crash mid-round. Their announced-but-unperformed jobs
		// ride the residue carry-over into the next round.
		CrashPlan: func(shard, round int) []uint64 {
			if round >= 10 {
				return nil
			}
			return []uint64{0, uint64(300 + 20*round), 600, 0}
		},
	})
	if err != nil {
		return err
	}
	defer d.Close()

	// Producers stream batches concurrently; each job bumps its own cell
	// so we can prove exactly-once afterwards.
	executions := make([]atomic.Int32, totalJobs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < chunks; c++ {
				fns := make([]func(), jobsPerChunk)
				base := next.Add(jobsPerChunk) - jobsPerChunk
				for i := range fns {
					idx := base + int64(i)
					fns[i] = func() { executions[idx].Add(1) }
				}
				if _, err := d.SubmitBatch(fns); err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	d.Flush() // drain every queue, including carried residue

	doubles, missed := 0, 0
	for i := range executions {
		switch executions[i].Load() {
		case 0:
			missed++
		case 1:
		default:
			doubles++
		}
	}

	st := d.Stats()
	fmt.Printf("streamed %d jobs through %d shards\n", st.Performed, len(st.Shards))
	fmt.Printf("rounds %d, residue carried %d, worker crashes %d, %.0f jobs/sec\n",
		st.Rounds, st.Residue, st.Crashes, st.JobsPerSec)
	for i, sh := range st.Shards {
		fmt.Printf("  shard %d: %4d rounds, %6d performed, last round %d/%d\n",
			i, sh.Rounds, sh.Performed, sh.LastPerformed, sh.LastBatch)
	}
	fmt.Printf("after flush: %d unperformed, %d double executions\n", missed, doubles)

	if doubles > 0 {
		return fmt.Errorf("at-most-once violated: %d double executions", doubles)
	}
	if missed > 0 {
		return fmt.Errorf("carry-over lost %d jobs", missed)
	}
	if st.Crashes == 0 {
		return fmt.Errorf("crash plan injected nothing")
	}
	return nil
}
