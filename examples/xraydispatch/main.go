// X-ray dispatch: the paper's §1 motivating scenario — "the activation of
// the X-ray gun in an X-ray machine ... performing specific jobs
// at-most-once may be of paramount importance for safety of patients".
//
// A treatment plan is a sequence of n radiation pulses. m redundant
// controllers race to deliver them (redundancy matters: controllers can
// crash mid-session), but delivering any single pulse TWICE would
// overdose the patient. The at-most-once layer lets every controller try
// every pulse while guaranteeing no pulse fires twice — even though two
// controllers crash mid-run here.
//
// Run with: go run ./examples/xraydispatch
package main

import (
	"fmt"
	"os"
	"sync/atomic"

	"atmostonce"
)

// pulse is one planned radiation exposure.
type pulse struct {
	fired   atomic.Int32
	dosage  int // centigray
	overlap bool
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xraydispatch:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		pulses      = 600
		controllers = 4
	)
	plan := make([]pulse, pulses+1)
	for i := range plan {
		plan[i].dosage = 2 // uniform plan for the demo
	}
	var delivered atomic.Int64

	// Controllers 2 and 3 fail mid-session after a few hundred actions —
	// the remaining controllers absorb their share safely.
	crashAfter := []uint64{0, 400, 900, 0}

	summary, err := atmostonce.Run(
		atmostonce.Config{
			Jobs:       pulses,
			Workers:    controllers,
			CrashAfter: crashAfter,
			Jitter:     true,
			Seed:       2011, // PODC vintage
		},
		func(controller, p int) {
			if plan[p].fired.Add(1) > 1 {
				plan[p].overlap = true // double exposure — must never happen
			}
			delivered.Add(int64(plan[p].dosage))
		},
	)
	if err != nil {
		return err
	}

	overdoses := 0
	for i := 1; i <= pulses; i++ {
		if plan[i].overlap {
			overdoses++
		}
	}
	fmt.Printf("controllers crashed:   %d of %d\n", summary.Crashed, controllers)
	fmt.Printf("pulses delivered:      %d / %d\n", summary.Performed, pulses)
	fmt.Printf("pulses undelivered:    %d (re-planned in the next session)\n", summary.Remaining)
	fmt.Printf("total dose delivered:  %d cGy\n", delivered.Load())
	fmt.Printf("double exposures:      %d\n", overdoses)
	if overdoses > 0 {
		return fmt.Errorf("SAFETY VIOLATION: a pulse fired twice")
	}
	fmt.Println("at-most-once held: no patient overdose despite controller crashes")
	return nil
}
