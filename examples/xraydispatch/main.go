// X-ray dispatch: the paper's §1 motivating scenario — "the activation of
// the X-ray gun in an X-ray machine ... performing specific jobs
// at-most-once may be of paramount importance for safety of patients".
//
// A treatment plan is a sequence of n radiation pulses; delivering any
// single pulse TWICE would overdose the patient. Here the plan runs on
// the durable streaming Dispatcher: session 1 journals every pulse to
// mmap register files (record-then-do) and dies mid-plan; session 2
// reopens the same files, re-submits the whole plan, and the journal
// resolves the already-delivered pulses as Recovered — the X-ray gun
// never fires them again.
//
// Session 2 also runs with full trace sampling and an ops endpoint, so
// the per-job timelines that prove it are observable: the example
// fetches /tracez over HTTP and prints a recovered pulse's timeline
// (submitted → recovered, no "started" — the payload never re-ran).
//
// Run with: go run ./examples/xraydispatch
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"

	"atmostonce"
	"atmostonce/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xraydispatch:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		pulses   = 600
		preCrash = 350 // pulses delivered before session 1 dies
	)
	dir, err := os.MkdirTemp("", "xraydispatch-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// fired counts real X-ray gun activations per pulse, across both
	// sessions — any cell ever reaching 2 is a patient overdose.
	var fired [pulses]atomic.Int32
	plan := make([]func(), pulses)
	for i := range plan {
		i := i
		plan[i] = func() { fired[i].Add(1) }
	}
	cfg := atmostonce.DispatcherConfig{
		Shards:          2,
		WorkersPerShard: 2,
		Backend:         "mmap:" + filepath.Join(dir, "regs"),
		MaxJobs:         2 * pulses,
	}

	// Session 1: the control host journals and delivers the first 350
	// pulses, then loses power. The journal rows are already on disk —
	// record-then-do means a recorded pulse either ran or never will.
	d1, err := atmostonce.NewDispatcher(cfg)
	if err != nil {
		return err
	}
	// Single sequential submits in BOTH sessions: deterministic job ids
	// come from deterministic submission order and placement, and that
	// is what lets a restart re-submit the plan and line up with the
	// journal (batch and single submission place jobs differently, so a
	// restart must re-submit the way the dead session submitted).
	for _, fn := range plan[:preCrash] {
		if _, err := d1.Submit(fn); err != nil {
			return err
		}
	}
	d1.Flush()
	if err := d1.Close(); err != nil {
		return err
	}
	fmt.Printf("session 1: delivered %d / %d pulses, then crashed\n", preCrash, pulses)

	// Session 2: a replacement host reopens the register files and
	// re-submits the ENTIRE plan — it does not need to know how far the
	// dead session got. Full trace sampling + an ops endpoint make the
	// recovery observable.
	cfg.TraceSampleRate = 1
	cfg.MetricsAddr = "127.0.0.1:0"
	d2, err := atmostonce.NewDispatcher(cfg)
	if err != nil {
		return err
	}
	defer d2.Close()
	var recovered atomic.Int32
	var firstRecovered atomic.Uint64
	for _, fn := range plan {
		if _, err := d2.SubmitCallback(fn, func(r atmostonce.JobResult) {
			if r.Recovered {
				recovered.Add(1)
				firstRecovered.CompareAndSwap(0, r.ID)
			}
		}); err != nil {
			return err
		}
	}
	d2.Flush()

	overdoses := 0
	undelivered := 0
	for i := range fired {
		switch n := fired[i].Load(); {
		case n > 1:
			overdoses++
		case n == 0:
			undelivered++
		}
	}
	st := d2.Stats()
	fmt.Printf("session 2: re-submitted all %d pulses; %d resolved from the journal (Recovered), %d delivered fresh\n",
		pulses, recovered.Load(), pulses-int(recovered.Load())-undelivered)
	fmt.Printf("pulses undelivered:  %d\n", undelivered)
	fmt.Printf("double exposures:    %d\n", overdoses)

	if err := printRecoveredTimeline(d2.OpsAddr(), firstRecovered.Load()); err != nil {
		return err
	}
	if overdoses > 0 || st.Duplicates > 0 {
		return fmt.Errorf("SAFETY VIOLATION: a pulse fired twice")
	}
	if recovered.Load() != preCrash {
		return fmt.Errorf("recovered %d pulses from the journal, want %d", recovered.Load(), preCrash)
	}
	fmt.Println("at-most-once held across the crash: no patient overdose")
	return nil
}

// printRecoveredTimeline pulls the pulse's timeline from the session-2
// ops endpoint — /tracez?id=N serves just that job — and prints it: the
// trace must show the pulse resolving straight from the journal, never
// "started". Each event carries the incarnation that observed it
// (DESIGN.md §13); in this single-process session they all match.
func printRecoveredTimeline(addr string, id uint64) error {
	resp, err := http.Get(fmt.Sprintf("http://%s/tracez?id=%d", addr, id))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	doc, err := obs.ParseTracezDoc(body)
	if err != nil {
		return err
	}
	for _, j := range doc.Jobs {
		if j.ID != id {
			continue
		}
		fmt.Printf("\ntimeline of recovered pulse (job id %d, from /tracez?id=%d, incarnation %s):\n",
			j.ID, id, doc.Incarnation)
		for _, e := range j.Events {
			fmt.Printf("  +%8.1fµs  %-9s (shard %d)\n", e.TUs, e.Event, e.Shard)
			if e.Event == "started" {
				return fmt.Errorf("recovered pulse has a started event — payload re-ran")
			}
		}
		return nil
	}
	return fmt.Errorf("job %d not in /tracez at full sampling", id)
}
