// Two tenants, one kill -9: the at-most-once job service surviving the
// worst restart.
//
// A jobd server child runs over a durable mmap backend with two
// tenants: "alpha" (unlimited) and "beta" (MaxPending 2 — tight enough
// that pipelined submitters trip quota rejections). The parent pumps
// marked submissions at both tenants, lets a backlog build (tasks sleep
// a few milliseconds, so admission outruns execution), and SIGKILLs the
// child mid-round — no flush, no goodbye, mmap pages as they lay. A
// second incarnation opens the same directory, replays the descriptor
// log, dedupes everything the first incarnation's shard journals marked
// performed, and RE-EXECUTES the admitted-but-unperformed suffix. Then
// it keeps serving: the parent submits a fresh batch to prove the
// service is live, and shuts it down cleanly.
//
// Every task execution appends its payload index to a shared O_APPEND
// log — the oracle. The verdict, counted from the log:
//
//   - zero duplicates: no index ever executes twice, across the kill,
//     the replay and the re-execution;
//   - every quota-rejected submission executed zero times AND burned no
//     id (replayed descriptors ≤ acked submissions + in-flight bound);
//   - acked-but-never-executed is bounded by the record-then-do window
//     (one journal batch per shard) — the at-most-once loss the paper
//     trades for never-twice;
//   - everything acked by incarnation 2 (clean shutdown) executed
//     exactly once.
//
// The forensic layer closes the loop: the parent scrapes incarnation
// 1's /tracez every 50 ms (keeping the last snapshot — you cannot ask a
// SIGKILLed process for its trace), snapshots incarnation 2 after the
// drain, stitches both views into per-job cross-incarnation timelines
// (obs.StitchTimelines), checks the merged at-most-once grammar on
// every one, and prints the stitched timeline of one re-executed job:
// admitted by the dead incarnation, performed by its successor.
//
// Run with: go run ./examples/jobservice
package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"atmostonce/internal/jobd"
	"atmostonce/internal/obs"
)

const (
	shards   = 2
	workers  = 2
	maxBatch = 8 // small journal batches keep the record-then-do loss window tight

	taskSleep = 5 * time.Millisecond
	killAcked = 150 // SIGKILL once this many submissions are acked
	betaLimit = 2   // beta's MaxPending: tight, to trip quota
	betaPumps = 4   // pipelined goroutines hammering beta
	newWave   = 40  // fresh submissions against incarnation 2

	envRole = "AMO_JOBSERVICE_ROLE"
	envDir  = "AMO_JOBSERVICE_DIR"
)

func main() {
	if os.Getenv(envRole) == "server" {
		serverMain() // never returns
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jobservice:", err)
		os.Exit(1)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "jobservice (server):", err)
	os.Exit(1)
}

// serverMain is the child: a real jobd server process over the shared
// durable directory. Its one task type appends the payload index to the
// oracle log, then dwells long enough for a backlog to build. It prints
// READY with both addresses and serves until SIGTERM (incarnation 2) or
// SIGKILL (incarnation 1 — it never sees that one coming).
func serverMain() {
	dir := os.Getenv(envDir)
	oracle, err := os.OpenFile(filepath.Join(dir, "performed.log"),
		os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		die(err)
	}
	var logMu sync.Mutex
	reg := jobd.NewRegistry()
	reg.Register("mark", 1, func(_ context.Context, payload []byte) error {
		logMu.Lock()
		_, werr := fmt.Fprintf(oracle, "%s\n", payload)
		logMu.Unlock()
		if werr != nil {
			return werr
		}
		time.Sleep(taskSleep)
		return nil
	})
	srv, err := jobd.New(jobd.Options{
		Registry: reg,
		Backend:  "mmap:" + filepath.Join(dir, "jobd"),
		MaxJobs:  1 << 14,
		LogCells: 1 << 16,
		Shards:   shards,
		Workers:  workers,
		MaxBatch: maxBatch,
		Tenants: map[string]jobd.TenantLimits{
			"alpha": {},
			"beta":  {MaxPending: betaLimit},
		},
		MetricsAddr:     "127.0.0.1:0",
		TraceSampleRate: 1.0, // trace everything: the parent stitches across the kill
	})
	if err != nil {
		die(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		die(err)
	}
	fmt.Printf("READY %s %s\n", addr, srv.OpsAddr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	<-sig
	if err := srv.Close(); err != nil {
		die(err)
	}
	oracle.Close()
	os.Exit(0)
}

// child starts a server incarnation and returns it with its two
// addresses parsed from the READY line.
func child(self, dir string) (*exec.Cmd, string, string, error) {
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(), envRole+"=server", envDir+"="+dir)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", "", err
	}
	type ready struct{ addr, ops string }
	ch := make(chan ready, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			f := strings.Fields(sc.Text())
			if len(f) == 3 && f[0] == "READY" {
				ch <- ready{f[1], f[2]}
				break
			}
		}
		close(ch)
		io.Copy(io.Discard, out)
	}()
	select {
	case r, ok := <-ch:
		if !ok {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, "", "", errors.New("server exited before READY")
		}
		return cmd, r.addr, r.ops, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, "", "", errors.New("server never printed READY")
	}
}

func scrapeTracez(ops string) ([]byte, error) {
	resp, err := http.Get("http://" + ops + "/tracez")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// outcome tracks what the parent knows about each payload index.
type outcome struct {
	mu       sync.Mutex
	acked1   map[int]bool // acked by incarnation 1
	acked2   map[int]bool // acked by incarnation 2
	rejected map[int]bool // quota-rejected: must never execute
	unknown  map[int]bool // in flight at the kill: outcome legitimately unknown
	quota    int
}

func (o *outcome) record(idx int, inc int, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	switch {
	case err == nil && inc == 1:
		o.acked1[idx] = true
	case err == nil:
		o.acked2[idx] = true
	case jobd.IsQuota(err):
		o.rejected[idx] = true
		o.quota++
	default:
		o.unknown[idx] = true // ErrConnLost at the kill, never resent
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "amo-jobservice-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	self, err := os.Executable()
	if err != nil {
		return err
	}

	// ---- Incarnation 1: pump both tenants, build a backlog, kill -9. ----
	srv1, addr1, ops1, err := child(self, dir)
	if err != nil {
		return err
	}

	// Keep the freshest /tracez view of a process that will die without
	// warning.
	var lastTrace atomic.Pointer[[]byte]
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			if b, err := scrapeTracez(ops1); err == nil {
				lastTrace.Store(&b)
			} else {
				return // server is gone; last snapshot stands
			}
			<-tick.C
		}
	}()

	o := &outcome{
		acked1:   make(map[int]bool),
		acked2:   make(map[int]bool),
		rejected: make(map[int]bool),
		unknown:  make(map[int]bool),
	}
	var nextIdx atomic.Int64
	var ackedCount atomic.Int64
	stop := make(chan struct{})
	var pumps sync.WaitGroup

	pump := func(c *jobd.Client, tenant string, inc int) {
		defer pumps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			idx := int(nextIdx.Add(1) - 1)
			_, err := c.Submit(tenant, "mark", 1, []byte(strconv.Itoa(idx)), jobd.SubmitOptions{})
			o.record(idx, inc, err)
			if err == nil {
				ackedCount.Add(1)
			} else if !isQuota(err) {
				return // connection lost: the kill landed
			}
		}
	}

	alpha, err := jobd.Dial(addr1, jobd.ClientOptions{Name: "alpha-pump"})
	if err != nil {
		return err
	}
	beta, err := jobd.Dial(addr1, jobd.ClientOptions{Name: "beta-pump"})
	if err != nil {
		return err
	}
	submitters := 1 + betaPumps
	pumps.Add(submitters)
	go pump(alpha, "alpha", 1)
	for i := 0; i < betaPumps; i++ {
		go pump(beta, "beta", 1)
	}

	for ackedCount.Load() < killAcked {
		time.Sleep(time.Millisecond)
	}
	if err := srv1.Process.Kill(); err != nil { // SIGKILL: mid-round, no goodbye
		return err
	}
	srv1.Wait()
	close(stop)
	pumps.Wait()
	alpha.Close()
	beta.Close()
	<-scrapeDone
	tb := lastTrace.Load()
	if tb == nil {
		return errors.New("no /tracez snapshot survived incarnation 1")
	}
	doc1, err := obs.ParseTracezDoc(*tb)
	if err != nil {
		return fmt.Errorf("incarnation 1 trace: %w", err)
	}
	performedAtKill := len(readOracle(dir))
	fmt.Printf("incarnation 1 killed (SIGKILL) with %d acked, %d quota-rejected, %d in flight; oracle shows %d performed\n",
		len(o.acked1), o.quota, len(o.unknown), performedAtKill)
	if o.quota == 0 {
		return errors.New("no quota rejections — beta's pumps never tripped the limit; the demo proves less than it claims")
	}

	// ---- Incarnation 2: replay, re-execute, keep serving. ----
	srv2, addr2, ops2, err := child(self, dir)
	if err != nil {
		return err
	}
	c2, err := jobd.Dial(addr2, jobd.ClientOptions{Name: "verifier"})
	if err != nil {
		return err
	}
	var st jobd.ServerStats
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err = c2.Stats()
		if err != nil {
			return err
		}
		if st.Jobs.Pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replay never drained: %+v", st.Jobs)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("incarnation 2 (%s) replayed %d descriptors: %d deduped against the journals, %d re-executed\n",
		st.Incarnation, st.Replayed, st.Jobs.Recovered, st.Reexecuted)
	if st.Reexecuted == 0 {
		return errors.New("nothing re-executed — the kill missed the backlog; raise killAcked")
	}
	if st.Jobs.Duplicates != 0 {
		return fmt.Errorf("dispatcher reports %d duplicates", st.Jobs.Duplicates)
	}
	// Quota rejections burned no ids: every id the service ever assigned
	// is a replayed descriptor, and those number at most the acked
	// submissions plus one unacked in-flight submission per submitter.
	if int(st.Replayed) < len(o.acked1) || int(st.Replayed) > len(o.acked1)+submitters {
		return fmt.Errorf("replayed %d descriptors for %d acked submissions (+%d submitters max in flight): ids leaked or lost",
			st.Replayed, len(o.acked1), submitters)
	}
	fmt.Printf("%d quota rejections burned no ids: %d replayed descriptors for %d acked (+≤%d in flight at the kill)\n",
		o.quota, st.Replayed, len(o.acked1), submitters)

	// The service is alive: a fresh wave against both tenants.
	for i := 0; i < newWave; i++ {
		idx := int(nextIdx.Add(1) - 1)
		tenant := "alpha"
		if i%2 == 1 {
			tenant = "beta"
		}
		for {
			_, err := c2.Submit(tenant, "mark", 1, []byte(strconv.Itoa(idx)), jobd.SubmitOptions{})
			if err == nil {
				o.record(idx, 2, nil)
				break
			}
			if isQuota(err) { // beta backlog: retry, don't skip the index
				time.Sleep(taskSleep)
				continue
			}
			return fmt.Errorf("second-wave submit: %w", err)
		}
	}
	deadline = time.Now().Add(60 * time.Second)
	for {
		st, err = c2.Stats()
		if err != nil {
			return err
		}
		if st.Jobs.Pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("second wave never drained: %+v", st.Jobs)
		}
		time.Sleep(10 * time.Millisecond)
	}

	traceB, err := scrapeTracez(ops2)
	if err != nil {
		return fmt.Errorf("incarnation 2 trace: %w", err)
	}
	doc2, err := obs.ParseTracezDoc(traceB)
	if err != nil {
		return err
	}
	if err := srv2.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := srv2.Wait(); err != nil {
		return fmt.Errorf("incarnation 2 shutdown: %w", err)
	}

	// ---- The verdict, from the oracle. ----
	counts := readOracle(dir)
	var dup, lost1, lostWindow int
	for idx, n := range counts {
		if n > 1 {
			dup++
			fmt.Printf("DUPLICATE: index %d executed %d times\n", idx, n)
		}
	}
	for idx := range o.rejected {
		if counts[idx] != 0 {
			return fmt.Errorf("quota-rejected index %d executed %d times", idx, counts[idx])
		}
	}
	for idx := range o.acked1 {
		if counts[idx] == 0 {
			lost1++
		}
	}
	for idx := range o.acked2 {
		if counts[idx] != 1 {
			return fmt.Errorf("index %d acked by incarnation 2 executed %d times, want 1", idx, counts[idx])
		}
	}
	lostWindow = shards * maxBatch
	if dup > 0 {
		return fmt.Errorf("at-most-once violated: %d duplicates", dup)
	}
	if lost1 > lostWindow {
		return fmt.Errorf("%d acked jobs never executed — exceeds the %d-job record-then-do window", lost1, lostWindow)
	}
	fmt.Printf("oracle verdict: 0 duplicates across the kill; %d/%d acked jobs lost to the record-then-do window (bound %d); second wave %d/%d exactly once\n",
		lost1, len(o.acked1), lostWindow, len(o.acked2), newWave)

	// ---- The forensic exhibit: stitched cross-incarnation timelines. ----
	jobs := obs.StitchTimelines(doc1, doc2)
	if len(jobs) == 0 {
		return errors.New("stitching produced no timelines")
	}
	for _, j := range jobs {
		if err := obs.CheckStitched(j); err != nil {
			return fmt.Errorf("merged trace grammar violated: %w", err)
		}
	}
	fmt.Printf("merged trace grammar holds for all %d stitched jobs (started at most once across incarnations)\n", len(jobs))
	role := map[string]string{doc1.Incarnation: "killed", doc2.Incarnation: "successor"}
	for _, j := range jobs {
		// The exhibit: events in the killed incarnation, and a worker
		// START in the successor — i.e. genuinely re-executed, not merely
		// recovered (recovered jobs resolve without a second start).
		seen1, started2 := false, false
		for _, e := range j.Events {
			seen1 = seen1 || e.Inc == doc1.Incarnation
			started2 = started2 || (e.Inc == doc2.Incarnation && e.Event == "started")
		}
		if !(seen1 && started2) {
			continue
		}
		fmt.Printf("stitched timeline of re-executed job %d — admitted by the killed incarnation, performed by its successor:\n", j.ID)
		for _, e := range j.Events {
			fmt.Printf("  %+12.0fµs  %-10s shard %d  inc %s (%s)\n", e.TUs, e.Event, e.Shard, e.Inc, role[e.Inc])
		}
		fmt.Println("jobservice: OK")
		return nil
	}
	return errors.New("no stitched timeline shows a job admitted before the kill and performed after it")
}

func isQuota(err error) bool { return jobd.IsQuota(err) }

// readOracle returns executions per payload index.
func readOracle(dir string) map[int]int {
	f, err := os.Open(filepath.Join(dir, "performed.log"))
	if err != nil {
		return map[int]int{}
	}
	defer f.Close()
	counts := make(map[int]int)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if idx, err := strconv.Atoi(strings.TrimSpace(sc.Text())); err == nil {
			counts[idx]++
		}
	}
	return counts
}
