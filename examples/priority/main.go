// Priority and deadlines: the v2 job API end to end.
//
// Dispatcher.Do takes a Task — a payload plus its scheduling contract —
// and returns a Handle whose Done() future resolves exactly once. This
// example exercises every part of that contract on one dispatcher:
//
//   - Priorities: a deep Low-priority backlog is queued first, then a
//     High-priority burst. Each shard drains High before Normal before
//     Low, so the burst completes while most of the backlog is still
//     pending — the priority-inversion win the v1 single-ring API could
//     not express.
//   - Deadlines: a Task whose deadline passes while it waits in the
//     queue is NEVER started — expiry is decided at round-assembly time,
//     so at-most-once is untouched — and resolves exactly once with
//     Expired set and Err = context.DeadlineExceeded.
//   - Payload errors: a payload that returns an error still counts as
//     performed (it ran once); the error travels to the JobResult.
//   - ctx admission: a cancelled submission ctx releases a parked
//     Block-policy submitter without consuming a job id.
//
// Run with: go run ./examples/priority
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"atmostonce"
)

const (
	backlog = 4000
	burst   = 32
	payload = 20 * time.Microsecond
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "priority:", err)
		os.Exit(1)
	}
}

func run() error {
	d, err := atmostonce.NewDispatcher(atmostonce.DispatcherConfig{
		Shards:          2,
		WorkersPerShard: 2,
		MaxBatch:        64,
		RoundTarget:     2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	ctx := context.Background()

	// Phase 1 — priorities. Queue the Low backlog, then the High burst.
	spin := func(context.Context) error {
		for t0 := time.Now(); time.Since(t0) < payload; {
		}
		return nil
	}
	low := make([]atmostonce.Task, backlog)
	for i := range low {
		low[i] = atmostonce.Task{Fn: spin, Priority: atmostonce.Low}
	}
	if _, err := d.DoBatch(ctx, low); err != nil {
		return err
	}
	var pendingAtBurstDone atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(burst)
	for i := 0; i < burst; i++ {
		if _, err := d.Do(ctx, atmostonce.Task{
			Fn:       spin,
			Priority: atmostonce.High,
			Callback: func(atmostonce.JobResult) {
				pendingAtBurstDone.Store(d.Stats().Pending)
				wg.Done()
			},
		}); err != nil {
			return err
		}
	}
	wg.Wait()
	if p := pendingAtBurstDone.Load(); p < backlog/2 {
		return fmt.Errorf("High burst finished with only %d jobs pending — it waited out the Low backlog", p)
	}
	fmt.Printf("high-priority burst of %d done while > %d%% of the low backlog still pends\n",
		burst, 100*pendingAtBurstDone.Load()/(backlog+burst))

	// Phase 2 — a deadline missed in the queue. The backlog is still
	// draining, so a 1ns deadline is long gone when a round next forms.
	h, err := d.Do(ctx, atmostonce.Task{
		Fn:       func(context.Context) error { panic("expired payloads must never run") },
		Deadline: time.Now().Add(time.Nanosecond),
		Priority: atmostonce.Low,
	})
	if err != nil {
		return err
	}
	r := <-h.Done()
	if !r.Expired || !errors.Is(r.Err, context.DeadlineExceeded) {
		return fmt.Errorf("deadline miss resolved as %+v", r)
	}
	fmt.Println("queued past its deadline: resolved Expired, payload never ran")

	// Phase 3 — payload errors ride the JobResult.
	boom := errors.New("payload failed")
	h, err = d.Do(ctx, atmostonce.Task{Fn: func(context.Context) error { return boom }})
	if err != nil {
		return err
	}
	if r := <-h.Done(); !errors.Is(r.Err, boom) {
		return fmt.Errorf("payload error lost: %+v", r)
	}
	fmt.Println("failing payload: performed once, error delivered in the JobResult")

	d.Flush()
	st := d.Stats()
	if st.Duplicates != 0 || st.Pending != 0 {
		return fmt.Errorf("invariants broken: %d duplicates, %d pending", st.Duplicates, st.Pending)
	}
	if st.Expired != 1 {
		return fmt.Errorf("Stats.Expired = %d, want 1", st.Expired)
	}
	fmt.Printf("done: %d jobs, %d expired, 0 duplicates\n", st.Performed, st.Expired)
	return nil
}
