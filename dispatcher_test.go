package atmostonce

import (
	"errors"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDispatcherEndToEnd streams 100k jobs from concurrent producers
// through 4 shards with crash injection: every job must execute exactly
// once (zero duplicates, zero lost), with the per-round residue drained by
// Flush.
func TestDispatcherEndToEnd(t *testing.T) {
	const (
		jobs      = 100_000
		producers = 4
	)
	d, err := NewDispatcher(DispatcherConfig{
		Shards:          4,
		WorkersPerShard: 4,
		MaxBatch:        512,
		Jitter:          true,
		Seed:            9,
		CrashPlan: func(shard, round int) []uint64 {
			if round >= 20 {
				return nil
			}
			return []uint64{0, uint64(200 + 17*round), 400, 0}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	counts := make([]atomic.Int32, jobs)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for base := p * (jobs / producers); base < (p+1)*(jobs/producers); base += 500 {
				fns := make([]func(), 500)
				for i := range fns {
					idx := base + i
					fns[i] = func() { counts[idx].Add(1) }
				}
				if _, err := d.SubmitBatch(fns); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	d.Flush()

	lost, dup := 0, 0
	for i := range counts {
		switch c := counts[i].Load(); {
		case c == 0:
			lost++
		case c > 1:
			dup++
		}
	}
	if lost != 0 || dup != 0 {
		t.Fatalf("%d lost, %d duplicated of %d jobs", lost, dup, jobs)
	}

	st := d.Stats()
	if st.Performed != jobs || st.Pending != 0 {
		t.Fatalf("stats: performed %d pending %d", st.Performed, st.Pending)
	}
	if st.Duplicates != 0 {
		t.Fatalf("stats: %d duplicates", st.Duplicates)
	}
	if st.Crashes == 0 || st.Residue == 0 {
		t.Fatalf("fault injection inert: crashes=%d residue=%d", st.Crashes, st.Residue)
	}
	if st.Rounds == 0 || st.JobsPerSec <= 0 {
		t.Fatalf("throughput counters missing: rounds=%d jobs/sec=%f", st.Rounds, st.JobsPerSec)
	}
}

// TestDispatcherAsyncAPI drives the public async pipeline end to end:
// futures and callbacks under a bounded queue, with crash injection
// forcing residue carry-over, every future resolving exactly once.
func TestDispatcherAsyncAPI(t *testing.T) {
	const jobs = 2000
	d, err := NewDispatcher(DispatcherConfig{
		Shards:          2,
		WorkersPerShard: 3,
		MaxBatch:        64,
		QueueDepth:      256,
		SubmitPolicy:    Block,
		Jitter:          true,
		Seed:            21,
		CrashPlan: func(shard, round int) []uint64 {
			if round >= 8 {
				return nil
			}
			return []uint64{0, uint64(30 + 9*round), 80}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	counts := make([]atomic.Int32, jobs)
	var fired atomic.Int64
	chans := make([]<-chan JobResult, 0, jobs/2)
	ids := make([]uint64, 0, jobs/2)
	for i := 0; i < jobs; i++ {
		idx := i
		if i%2 == 0 {
			id, ch, err := d.SubmitAsync(func() { counts[idx].Add(1) })
			if err != nil {
				t.Fatal(err)
			}
			chans, ids = append(chans, ch), append(ids, id)
		} else if _, err := d.SubmitCallback(func() { counts[idx].Add(1) },
			func(JobResult) { fired.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	for i, ch := range chans {
		r := <-ch
		if r.ID != ids[i] || r.Recovered {
			t.Fatalf("future %d: %+v, want id %d", i, r, ids[i])
		}
	}
	d.Flush()
	if got := fired.Load(); got != jobs/2 {
		t.Fatalf("%d callbacks fired, want %d", got, jobs/2)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
	st := d.Stats()
	if st.Duplicates != 0 || st.Crashes == 0 {
		t.Fatalf("duplicates=%d crashes=%d", st.Duplicates, st.Crashes)
	}
	for i, sh := range st.Shards {
		if sh.QueueDepth != 0 {
			t.Fatalf("shard %d queue depth %d after Flush", i, sh.QueueDepth)
		}
	}
}

// TestDispatcherFailFastAPI: the public FailFast policy surfaces
// ErrQueueFull and rejections consume no ids.
func TestDispatcherFailFastAPI(t *testing.T) {
	gate := make(chan struct{})
	d, err := NewDispatcher(DispatcherConfig{
		Shards:          1,
		WorkersPerShard: 2,
		MaxBatch:        2,
		QueueDepth:      2,
		SubmitPolicy:    FailFast,
	})
	if err != nil {
		t.Fatal(err)
	}
	accepted := uint64(0)
	sawFull := false
	for i := 0; i < 64 && !sawFull; i++ {
		id, err := d.Submit(func() { <-gate })
		switch {
		case err == nil:
			accepted++
			if id != accepted {
				t.Fatalf("id %d after %d accepts (rejections burned ids?)", id, accepted)
			}
		case errors.Is(err, ErrQueueFull):
			sawFull = true
		default:
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("queue never rejected")
	}
	close(gate)
	d.Flush()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDispatcherDefaults exercises the zero config and tiny submissions.
func TestDispatcherDefaults(t *testing.T) {
	d, err := NewDispatcher(DispatcherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int32
	if _, err := d.Submit(func() { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if first, err := d.SubmitBatch(nil); err != nil || first != 0 {
		t.Fatalf("empty batch: first=%d err=%v", first, err)
	}
	d.Flush()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1 {
		t.Fatalf("job ran %d times", ran.Load())
	}
}

// TestDispatcherDurableBackend drives the public durable configuration:
// a dispatcher over "mmap:" register files performs a stream, closes
// cleanly, and a second dispatcher over the same files resolves the
// whole re-submitted stream from the journal without running a single
// payload again. (The crash path — a killed process rather than a clean
// Close — is exercised by internal/dispatch's recovery tests and by
// examples/recover.)
func TestDispatcherDurableBackend(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("mmap backend requires linux")
	}
	const jobs = 500
	cfg := DispatcherConfig{
		Shards:          2,
		WorkersPerShard: 2,
		MaxBatch:        64,
		Backend:         "counting:mmap:" + filepath.Join(t.TempDir(), "regs"),
		MaxJobs:         jobs,
		Expvar:          true,
	}
	var runs atomic.Int64
	fns := make([]func(), jobs)
	for i := range fns {
		fns[i] = func() { runs.Add(1) }
	}

	d1, err := NewDispatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1.ExpvarName() == "" {
		t.Error("Expvar requested but ExpvarName is empty")
	}
	if _, err := d1.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	d1.Flush()
	if err := d1.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := d1.Stats(); st.Recovered != 0 || st.Performed != jobs {
		t.Fatalf("first incarnation: %+v", st)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != jobs {
		t.Fatalf("ran %d payloads, want %d", got, jobs)
	}

	d2, err := NewDispatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, err := d2.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	d2.Flush()
	if got := runs.Load(); got != jobs {
		t.Fatalf("restart re-ran payloads: %d total, want %d", got, jobs)
	}
	if st := d2.Stats(); st.Recovered != jobs || st.Duplicates != 0 {
		t.Fatalf("restart stats: %+v", st)
	}

	// An unknown backend spec surfaces as a constructor error.
	if _, err := NewDispatcher(DispatcherConfig{Backend: "bogus:x", MaxJobs: 1}); err == nil {
		t.Fatal("unknown backend spec accepted")
	}
}
