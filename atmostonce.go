// Package atmostonce performs n jobs on m concurrent workers with
// at-most-once semantics, using only atomic read/write shared memory — no
// locks, no compare-and-swap, no test-and-set on the algorithm path.
//
// It implements the wait-free deterministic algorithms of Kentros &
// Kiayias, "Solving the At-Most-Once Problem with Nearly Optimal
// Effectiveness" (PODC 2011 / TCS 2013):
//
//   - KKβ: effectiveness n−(β+m−2), which for β=m is within an additive m
//     of the n−m+1 upper bound over all algorithms (Theorem 4.4);
//   - IterativeKK(ε): effectiveness n−O(m²·log n·log m) with work
//     O(n+m^{3+ε}·log n) — simultaneously effectiveness- and work-optimal
//     for m = O((n/log n)^{1/(3+ε)}) (Theorem 6.4);
//   - WA_IterativeKK(ε): a Write-All solution with the same work bound
//     (Theorem 7.1).
//
// The package offers three modes. Run executes a fixed batch of jobs on
// real goroutines over sync/atomic registers. NewDispatcher serves a
// continuous job stream: it batches submissions into rounds across
// independent KKβ shards and carries each round's unperformed residue into
// the next, so the per-round effectiveness tail is deferred, never lost;
// jobs enter through Dispatcher.Do as Task descriptors carrying
// deadlines, priorities and completion callbacks.
// Simulate executes the algorithms under a deterministic adversarial
// scheduler with crash injection and returns effectiveness/work/collision
// measurements — the mode used to reproduce the paper's results
// (regenerate EXPERIMENTS.md with cmd/amo-bench).
package atmostonce

import (
	"errors"
	"fmt"

	"atmostonce/internal/adversary"
	"atmostonce/internal/conc"
	"atmostonce/internal/core"
	"atmostonce/internal/sim"
)

// Config configures a concurrent at-most-once run.
type Config struct {
	// Jobs is n, the number of jobs (identified 1..n).
	Jobs int
	// Workers is m, the number of worker goroutines.
	Workers int
	// Beta is KKβ's termination parameter β ≥ m; 0 selects β = m, the
	// effectiveness-optimal choice. Larger β makes workers give up
	// earlier (fewer jobs done, less contention); β = 3m² gives the
	// paper's O(nm·log n·log m) work bound.
	Beta int
	// Iterative selects IterativeKK(ε), the work-optimal variant, with
	// ε = 1/EpsDenom (EpsDenom 0 = 1). Preferable when m is small
	// relative to n and total work matters.
	Iterative bool
	EpsDenom  int
	// Jitter adds scheduling noise (runtime.Gosched) for test diversity;
	// Seed makes it deterministic.
	Jitter bool
	Seed   int64
	// CrashAfter optionally stops worker i after CrashAfter[i] steps
	// (0 = never); used to exercise fault tolerance. At least one worker
	// must never crash.
	CrashAfter []uint64
}

// Summary reports the outcome of a concurrent run.
type Summary struct {
	// Performed is the number of distinct jobs executed (Do(α)).
	Performed int
	// Remaining is Jobs − Performed: work left unperformed. Theorem 4.4
	// bounds it by β+m−2 when no worker crashes mid-announcement.
	Remaining int
	// Unperformed lists the job ids left undone, in ascending order —
	// feed them to a follow-up round (see examples/retryrounds). Nil when
	// everything was performed.
	Unperformed []int
	// Duplicates counts duplicate executions; always 0 (Lemma 4.1). It is
	// reported so harnesses can assert it.
	Duplicates int
	// Crashed is the number of workers that crashed.
	Crashed int
}

// Run executes fn at most once per job on cfg.Workers goroutines. fn
// receives the worker id (1-based) and job id (1..Jobs). It returns an
// error for invalid configurations; job-level incompleteness is not an
// error (see Summary.Remaining — no wait-free algorithm can avoid it,
// Theorem 2.1).
func Run(cfg Config, fn func(worker, job int)) (*Summary, error) {
	opts := conc.Options{
		N: cfg.Jobs, M: cfg.Workers, Beta: cfg.Beta,
		Iterative: cfg.Iterative, EpsDenom: cfg.EpsDenom,
		Jitter: cfg.Jitter, Seed: cfg.Seed, CrashAfter: cfg.CrashAfter,
	}
	if fn != nil {
		opts.DoFn = func(pid int, job int64) { fn(pid, int(job)) }
	}
	res, err := conc.Run(opts)
	if err != nil {
		return nil, err
	}
	done := make(map[int64]bool, res.Distinct)
	for _, e := range res.Events {
		done[e.Job] = true
	}
	var unperformed []int
	for j := 1; j <= cfg.Jobs; j++ {
		if !done[int64(j)] {
			unperformed = append(unperformed, j)
		}
	}
	return &Summary{
		Performed:   res.Distinct,
		Remaining:   cfg.Jobs - res.Distinct,
		Unperformed: unperformed,
		Duplicates:  res.Duplicates,
		Crashed:     res.Crashed,
	}, nil
}

// WriteAll executes fn at LEAST once per job (cells of a Write-All array)
// on workers goroutines using WA_IterativeKK(ε=1), and returns the number
// of redundant executions. Unlike Run, completion is guaranteed as long
// as one worker survives.
//
// Because duplicates are allowed, fn may be invoked CONCURRENTLY for the
// same cell by different workers; it must be idempotent and
// concurrency-safe (e.g. an atomic store). Run's at-most-once guarantee
// has no such requirement — there, fn runs at most once per job, period.
func WriteAll(cells, workers int, fn func(worker, cell int)) (redundant int, err error) {
	opts := conc.Options{N: cells, M: workers, WriteAll: true}
	if fn != nil {
		opts.DoFn = func(pid int, job int64) { fn(pid, int(job)) }
	}
	res, err := conc.Run(opts)
	if err != nil {
		return 0, err
	}
	if res.Distinct != cells {
		// Unreachable without crash injection (Theorem 7.1); defensive.
		return 0, fmt.Errorf("atmostonce: write-all covered %d of %d cells", res.Distinct, cells)
	}
	return len(res.Events) - cells, nil
}

// Scheduler selects the adversary driving a simulation.
type Scheduler int

// Available simulation schedulers.
const (
	// RoundRobin steps processes cyclically, no crashes.
	RoundRobin Scheduler = iota + 1
	// RandomSched steps a random live process; CrashProb and Seed apply.
	RandomSched
	// Tightness is the Theorem 4.4 worst-case strategy: m−1 processes
	// crash holding distinct announced jobs; effectiveness lands on
	// exactly n−(β+m−2).
	Tightness
	// Staircase maximizes view staleness to provoke collisions.
	Staircase
	// Alternator steps processes in descending id order each round.
	Alternator
)

// SimConfig configures a simulated adversarial execution.
type SimConfig struct {
	// Jobs (n), Workers (m) and Beta (β; 0 = m) as in Config.
	Jobs, Workers, Beta int
	// Iterative selects IterativeKK(ε = 1/EpsDenom).
	Iterative bool
	EpsDenom  int
	// Scheduler picks the adversary (default RoundRobin).
	Scheduler Scheduler
	// Crashes is the crash budget f < m (Tightness requires m−1).
	Crashes int
	// CrashProb and Seed parameterize RandomSched.
	CrashProb float64
	Seed      int64
	// TrackCollisions enables Definition 5.2 collision accounting
	// (plain KKβ only).
	TrackCollisions bool
	// MaxSteps aborts runaway executions (0 = 500M steps).
	MaxSteps uint64
}

// SimReport is the measured outcome of a simulated execution.
type SimReport struct {
	// Performed is Do(α); Duplicates must be 0 (Lemma 4.1).
	Performed  int
	Duplicates int
	// Work is total work in the paper's cost model; Steps counts actions.
	Work  uint64
	Steps uint64
	// Crashes is the number of injected failures.
	Crashes int
	// EffectivenessLB is n−(β+m−2) (Theorem 4.4) for plain KKβ runs.
	EffectivenessLB int
	// Collisions is the pairwise collision matrix when tracking was
	// requested; index [p-1][q-1] counts p colliding with q.
	Collisions [][]uint64
}

// ErrIncompatible marks invalid simulation option combinations.
var ErrIncompatible = errors.New("atmostonce: incompatible simulation options")

// Simulate runs one adversarial execution and reports its measurements.
func Simulate(cfg SimConfig) (*SimReport, error) {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 500_000_000
	}
	if cfg.Scheduler == 0 {
		cfg.Scheduler = RoundRobin
	}
	if cfg.Scheduler == Tightness {
		if cfg.Iterative {
			return nil, fmt.Errorf("%w: Tightness targets plain KKβ", ErrIncompatible)
		}
		cfg.Crashes = cfg.Workers - 1
	}
	adv, err := buildAdversary(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Iterative {
		s, err := core.NewIterSystem(core.IterConfig{
			N: cfg.Jobs, M: cfg.Workers, EpsDenom: cfg.EpsDenom, F: cfg.Crashes, Beta: cfg.Beta,
		})
		if err != nil {
			return nil, err
		}
		rep, err := s.Run(adv, cfg.MaxSteps)
		if err != nil {
			return nil, err
		}
		return convertReport(cfg, rep, nil), nil
	}
	s, err := core.NewSystem(core.Config{
		N: cfg.Jobs, M: cfg.Workers, Beta: cfg.Beta, F: cfg.Crashes,
		TrackCollisions: cfg.TrackCollisions,
	})
	if err != nil {
		return nil, err
	}
	rep, err := s.Run(adv, cfg.MaxSteps)
	if err != nil {
		return nil, err
	}
	return convertReport(cfg, rep, s.Collisions), nil
}

func buildAdversary(cfg SimConfig) (sim.Adversary, error) {
	switch cfg.Scheduler {
	case RoundRobin:
		return &sim.RoundRobin{}, nil
	case RandomSched:
		a := sim.NewRandom(cfg.Seed)
		a.CrashProb = cfg.CrashProb
		return a, nil
	case Tightness:
		return &adversary.Tightness{}, nil
	case Staircase:
		return &adversary.Staircase{}, nil
	case Alternator:
		return &adversary.Alternator{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown scheduler %d", ErrIncompatible, cfg.Scheduler)
	}
}

func convertReport(cfg SimConfig, rep *core.Report, coll *core.CollisionMatrix) *SimReport {
	out := &SimReport{
		Performed:       rep.Distinct,
		Duplicates:      rep.Duplicates,
		Work:            rep.Work,
		Steps:           rep.Result.Steps,
		Crashes:         rep.Result.Crashes,
		EffectivenessLB: core.EffectivenessBound(cfg.Jobs, cfg.Workers, cfg.Beta),
	}
	if coll != nil {
		m := coll.M()
		out.Collisions = make([][]uint64, m)
		for p := 1; p <= m; p++ {
			out.Collisions[p-1] = make([]uint64, m)
			for q := 1; q <= m; q++ {
				out.Collisions[p-1][q-1] = coll.Count(p, q)
			}
		}
	}
	return out
}

// EffectivenessLowerBound returns Theorem 4.4's guarantee n−(β+m−2): the
// number of jobs KKβ completes in the worst case.
func EffectivenessLowerBound(n, m, beta int) int {
	return core.EffectivenessBound(n, m, beta)
}

// EffectivenessUpperBound returns Theorem 2.1's limit n−f on the
// effectiveness of ANY at-most-once algorithm under f crashes.
func EffectivenessUpperBound(n, f int) int { return core.UpperBound(n, f) }
