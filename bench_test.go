package atmostonce

import (
	"testing"

	"atmostonce/internal/adversary"
	"atmostonce/internal/core"
	"atmostonce/internal/harness"
	"atmostonce/internal/oset"
	"atmostonce/internal/sim"
	"atmostonce/internal/writeall"
)

// One benchmark per reproduction experiment (DESIGN.md §4). Each iteration
// runs the experiment's core workload and reports the headline metric via
// b.ReportMetric, so `go test -bench=.` regenerates every result of
// EXPERIMENTS.md in miniature; `cmd/amo-bench` runs the full sweeps.

const benchStepLimit = 2_000_000_000

// BenchmarkE1Effectiveness: Theorem 4.4 — tightness adversary lands on
// exactly n−(β+m−2).
func BenchmarkE1Effectiveness(b *testing.B) {
	const n, m = 4096, 8
	var do int
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{N: n, M: m, F: m - 1})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := sys.Run(&adversary.Tightness{}, benchStepLimit)
		if err != nil {
			b.Fatal(err)
		}
		do = rep.Distinct
		if do != core.EffectivenessBound(n, m, 0) {
			b.Fatalf("Do = %d, want %d", do, core.EffectivenessBound(n, m, 0))
		}
	}
	b.ReportMetric(float64(do), "jobs-done")
	b.ReportMetric(float64(n-do), "jobs-lost")
}

// BenchmarkE2Bounds: safety and both effectiveness bounds on random
// crashy schedules.
func BenchmarkE2Bounds(b *testing.B) {
	const n, m = 2000, 4
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{N: n, M: m, F: m - 1})
		if err != nil {
			b.Fatal(err)
		}
		adv := sim.NewRandom(int64(i))
		adv.CrashProb = 0.0005
		rep, err := sys.Run(adv, benchStepLimit)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Duplicates != 0 {
			b.Fatal("AMO violated")
		}
		if rep.Distinct < core.EffectivenessBound(n, m, 0) || rep.Distinct > n {
			b.Fatalf("Do = %d out of bounds", rep.Distinct)
		}
	}
}

// BenchmarkE3Work: Theorem 5.6 — work of KK_{3m²}; the reported metric is
// the normalized constant work/(n·m·lgn·lgm).
func BenchmarkE3Work(b *testing.B) {
	const n, m = 8192, 8
	var norm float64
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{N: n, M: m, Beta: 3 * m * m})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := sys.Run(&sim.RoundRobin{}, benchStepLimit)
		if err != nil {
			b.Fatal(err)
		}
		norm = float64(rep.Work) / (float64(n) * float64(m) * 13 * 3) // lg(8192)=13, lg(8)=3
	}
	b.ReportMetric(norm, "work-norm")
}

// BenchmarkE4Collisions: Lemma 5.5 — pairwise collision bound under the
// staleness-maximizing staircase schedule.
func BenchmarkE4Collisions(b *testing.B) {
	const n, m = 4096, 8
	var total uint64
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{N: n, M: m, Beta: 3 * m * m, TrackCollisions: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(&adversary.Staircase{}, benchStepLimit); err != nil {
			b.Fatal(err)
		}
		for p := 1; p <= m; p++ {
			for q := 1; q <= m; q++ {
				if p != q && sys.Collisions.Count(p, q) > core.PairBound(n, m, p, q) {
					b.Fatal("Lemma 5.5 violated")
				}
			}
		}
		total = sys.Collisions.Total()
	}
	b.ReportMetric(float64(total), "collisions")
}

// BenchmarkE5Iterative: Theorem 6.4 — IterativeKK(ε=1) loss and work.
func BenchmarkE5Iterative(b *testing.B) {
	const n, m = 8192, 4
	var loss int
	var work uint64
	for i := 0; i < b.N; i++ {
		sys, err := core.NewIterSystem(core.IterConfig{N: n, M: m, EpsDenom: 1})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := sys.Run(&sim.RoundRobin{}, benchStepLimit)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Duplicates != 0 {
			b.Fatal("AMO violated")
		}
		loss, work = n-rep.Distinct, rep.Work
	}
	b.ReportMetric(float64(loss), "jobs-lost")
	b.ReportMetric(float64(work)/float64(n), "work-per-job")
}

// BenchmarkE6WriteAll: Theorem 7.1 — WA_IterativeKK completes and its
// per-cell work amortizes.
func BenchmarkE6WriteAll(b *testing.B) {
	const n, m = 8192, 4
	var perCell float64
	for i := 0; i < b.N; i++ {
		rep, err := writeall.RunIterKK(n, m, 1, 0, &sim.RoundRobin{}, benchStepLimit)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Complete() {
			b.Fatal("write-all incomplete")
		}
		perCell = float64(rep.Work) / float64(n)
	}
	b.ReportMetric(perCell, "work-per-cell")
}

// BenchmarkE7Comparison: §1 positioning — worst-case Do of KKβ vs the
// trivial baseline under f = m−1 crash-at-start.
func BenchmarkE7Comparison(b *testing.B) {
	const n, m = 4096, 8
	var kk int
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{N: n, M: m, F: m - 1})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := sys.Run(&adversary.Tightness{}, benchStepLimit)
		if err != nil {
			b.Fatal(err)
		}
		kk = rep.Distinct
	}
	b.ReportMetric(float64(kk), "kk-worst-do")
	b.ReportMetric(float64((1)*n/m), "trivial-worst-do") // (m−f)·n/m with f=m−1
}

// BenchmarkE8Crossover: work-optimality frontier — work/n of
// IterativeKK(ε=1) just inside and outside m = (n/lgn)^{1/4}.
func BenchmarkE8Crossover(b *testing.B) {
	const n = 8192
	var inside, outside float64
	for i := 0; i < b.N; i++ {
		for _, m := range []int{2, 16} {
			sys, err := core.NewIterSystem(core.IterConfig{N: n, M: m, EpsDenom: 1})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := sys.Run(&sim.RoundRobin{}, benchStepLimit)
			if err != nil {
				b.Fatal(err)
			}
			if m == 2 {
				inside = float64(rep.Work) / float64(n)
			} else {
				outside = float64(rep.Work) / float64(n)
			}
		}
	}
	b.ReportMetric(inside, "work-per-job-inside")
	b.ReportMetric(outside, "work-per-job-outside")
}

// --- ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationBeta sweeps the termination parameter: larger β buys
// less work (earlier termination) at the cost of effectiveness.
func BenchmarkAblationBeta(b *testing.B) {
	const n, m = 4096, 4
	for _, beta := range []int{m, 2 * m, m * m, 3 * m * m} {
		b.Run(betaName(beta, m), func(b *testing.B) {
			var do int
			var work uint64
			for i := 0; i < b.N; i++ {
				sys, err := core.NewSystem(core.Config{N: n, M: m, Beta: beta})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := sys.Run(&sim.RoundRobin{}, benchStepLimit)
				if err != nil {
					b.Fatal(err)
				}
				do, work = rep.Distinct, rep.Work
			}
			b.ReportMetric(float64(n-do), "jobs-lost")
			b.ReportMetric(float64(work)/float64(n), "work-per-job")
		})
	}
}

func betaName(beta, m int) string {
	switch beta {
	case m:
		return "beta=m"
	case 2 * m:
		return "beta=2m"
	case m * m:
		return "beta=m2"
	case 3 * m * m:
		return "beta=3m2"
	default:
		return "beta=?"
	}
}

// BenchmarkAblationPosCache quantifies the POS row-pointer optimization
// of gather_done (§3): disabling it re-reads whole done rows every pass.
func BenchmarkAblationPosCache(b *testing.B) {
	const n, m = 1024, 4
	for _, noCache := range []bool{false, true} {
		name := "pos-cache"
		if noCache {
			name = "no-pos-cache"
		}
		b.Run(name, func(b *testing.B) {
			var work uint64
			for i := 0; i < b.N; i++ {
				sys, err := core.NewSystem(core.Config{N: n, M: m, NoPosCache: noCache})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := sys.Run(&sim.RoundRobin{}, benchStepLimit)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Duplicates != 0 {
					b.Fatal("AMO violated")
				}
				work = rep.Work
			}
			b.ReportMetric(float64(work)/float64(n), "work-per-job")
		})
	}
}

// BenchmarkAblationRankStructure compares the order-statistic tree's
// rank(SET1,SET2,i) against a linear rescan of the set difference — the
// data-structure choice behind the O(|SET2|·log n) term in Theorem 5.6.
func BenchmarkAblationRankStructure(b *testing.B) {
	const size = 1 << 15
	s := oset.NewRange(1, size)
	excl := oset.New()
	for i := 1; i <= 16; i++ {
		excl.Insert(i * 1000)
	}
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := s.SelectExcluding(excl, i%(size/2)+1); !ok {
				b.Fatal("select failed")
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			target := i%(size/2) + 1
			rank, found := 0, false
			s.Ascend(func(v int) bool {
				if !excl.Contains(v) {
					rank++
					if rank == target {
						found = true
						return false
					}
				}
				return true
			})
			if !found {
				b.Fatal("linear select failed")
			}
		}
	})
}

// BenchmarkAblationCascade compares the IterativeKK size cascade against
// running KK_{3m²} directly on raw jobs (the single-level alternative).
func BenchmarkAblationCascade(b *testing.B) {
	const n, m = 32768, 4
	b.Run("cascade", func(b *testing.B) {
		var work uint64
		for i := 0; i < b.N; i++ {
			sys, err := core.NewIterSystem(core.IterConfig{N: n, M: m, EpsDenom: 1})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := sys.Run(&sim.RoundRobin{}, benchStepLimit)
			if err != nil {
				b.Fatal(err)
			}
			work = rep.Work
		}
		b.ReportMetric(float64(work)/float64(n), "work-per-job")
	})
	b.Run("single-level", func(b *testing.B) {
		var work uint64
		for i := 0; i < b.N; i++ {
			sys, err := core.NewSystem(core.Config{N: n, M: m, Beta: 3 * m * m})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := sys.Run(&sim.RoundRobin{}, benchStepLimit)
			if err != nil {
				b.Fatal(err)
			}
			work = rep.Work
		}
		b.ReportMetric(float64(work)/float64(n), "work-per-job")
	})
}

// BenchmarkConcurrentRun measures the real-goroutine runtime end to end.
func BenchmarkConcurrentRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sum, err := Run(Config{Jobs: 4096, Workers: 8}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if sum.Duplicates != 0 {
			b.Fatal("AMO violated")
		}
	}
}

// BenchmarkQuickSuite runs the whole quick experiment suite per iteration;
// useful as a single-number regression canary.
func BenchmarkQuickSuite(b *testing.B) {
	if testing.Short() {
		b.Skip("suite benchmark is slow")
	}
	for i := 0; i < b.N; i++ {
		for _, tab := range (harness.Suite{Quick: true}).All() {
			if !tab.Pass {
				b.Fatalf("%s failed", tab.ID)
			}
		}
	}
}
