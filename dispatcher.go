package atmostonce

import (
	"context"
	"time"

	"atmostonce/internal/dispatch"
	"atmostonce/internal/membackend"

	// Register the "net:" backend (networked register service) in the
	// membackend registry, so DispatcherConfig.Backend can name it.
	_ "atmostonce/internal/netmem"
)

// DispatcherConfig configures a streaming Dispatcher.
type DispatcherConfig struct {
	// Shards is the number of independent KKβ engines jobs are spread
	// over; rounds on different shards execute fully in parallel
	// (default 1).
	Shards int
	// WorkersPerShard is m for each shard's worker pool. The default is
	// derived from runtime.GOMAXPROCS(0) spread over the shards
	// (DefaultWorkersPerShard), so a default-config dispatcher matches
	// the machine instead of oversubscribing it.
	WorkersPerShard int
	// Beta is KKβ's termination parameter per shard (0 = WorkersPerShard,
	// the effectiveness-optimal choice).
	Beta int
	// MaxBatch caps the jobs a shard executes per round (default 1024).
	// It is a cap, not the round size: rounds are sized adaptively from
	// observed queue depth and recent round latency (see RoundTarget).
	MaxBatch int
	// QueueDepth bounds each shard's resident jobs — queued plus the
	// round in flight (0 = unbounded). A saturated shard then exerts
	// real backpressure: submissions block until rounds free space, or
	// fail fast, per SubmitPolicy — instead of growing the queue without
	// bound. The bound holds even while crash-injected residue requeues
	// and work-stealing migrates jobs.
	QueueDepth int
	// SubmitPolicy selects the behavior of submissions into a full shard
	// queue: Block (default) parks the submitter, FailFast returns
	// ErrQueueFull without consuming a job id. Only meaningful with
	// QueueDepth.
	SubmitPolicy SubmitPolicy
	// RoundTarget is the adaptive round controller's latency goal: each
	// shard sizes its rounds so they finish within roughly this duration
	// at the observed per-job cost, capped by MaxBatch. Smaller targets
	// bound per-job completion latency; larger targets favor throughput.
	// 0 means the default (5ms); negative disables adaptive sizing.
	RoundTarget time.Duration
	// Jitter adds scheduling noise inside the pools; Seed makes it
	// deterministic.
	Jitter bool
	Seed   int64
	// CrashPlan optionally injects worker crashes for fault testing:
	// before shard s runs its round r (0-based) it receives
	// CrashPlan(s, r); a non-nil result gives each worker a step count
	// after which it stops (0 = never; at least one worker must survive).
	// Crashed workers revive on the shard's next round, and the jobs their
	// crash left unperformed are carried into it.
	CrashPlan func(shard, round int) []uint64
	// Backend selects the register backend by membackend spec. "" or
	// "atomic" is the in-process default. "mmap:PATH" makes the
	// dispatcher durable: shard s maps the register file "PATH.shard<s>",
	// and at-most-once state survives process death — NewDispatcher over
	// existing files recovers the performed-job journal, and a client
	// that re-submits the same job stream in the same order has each
	// already-performed job resolve instantly instead of running twice
	// (see examples/recover). "net:HOST:PORT/NS" moves the registers to
	// an amo-regd register server: shard s uses namespace "NS.shard<s>",
	// holds the single-writer lease on it (a second dispatcher over the
	// same namespaces waits for the lease and then takes over, fenced
	// against the old writer — see examples/failover), and recovery
	// works exactly as for mmap, over the wire. "counting:SPEC" wraps
	// any backend with access counting. Durable and remote backends
	// require MaxJobs.
	Backend string
	// MaxJobs bounds the distinct job ids a durable dispatcher may
	// assign over the lifetime of its register files (across restarts);
	// it sizes the on-disk journal, and Submit fails once it is
	// exhausted. Required when Backend is durable or wrapped; ignored for
	// the in-process default.
	MaxJobs int
	// JournalBatch is the durable journal's group-commit factor (default
	// 1 = one acknowledged journal write per job). At k > 1 each worker
	// claims up to k jobs per journal write: all k ids land in one
	// vectored acked write (one msync for mmap, one round trip for net)
	// before any of their payloads run, so at-most-once still holds
	// across process death — but a kill between the batch write and the
	// payloads loses up to k jobs per worker to effectiveness (recovery
	// counts them performed; they are never re-run and never duplicated).
	// See DESIGN.md §14 for the crash-window analysis. Ignored for the
	// in-process default backend.
	JournalBatch int
	// Metrics enables the dispatcher's metric registry (Registry,
	// LatencyQuantiles). MetricsAddr, TraceSampleRate and Expvar each
	// imply it.
	Metrics bool
	// MetricsAddr, when non-empty, binds the ops HTTP endpoint there
	// (e.g. "127.0.0.1:9091", or ":0" for a kernel-chosen port reported
	// by OpsAddr). It serves /metrics (Prometheus text exposition for
	// the dispatcher, netmem and membackend families), /healthz,
	// /statsz (Stats plus registry snapshot as JSON), /tracez (sampled
	// job timelines) and /debug/pprof/*. The endpoint closes with the
	// dispatcher.
	MetricsAddr string
	// TraceSampleRate samples per-job timelines: the fraction of job
	// ids (deterministically hashed, 0..1) whose lifecycle events —
	// Submitted, Queued, Stolen, Started, Journaled, Resolved, Expired,
	// Recovered — are recorded into a bounded ring, dumpable at
	// /tracez. 0 disables tracing.
	TraceSampleRate float64
	// Expvar publishes the dispatcher's metric registry snapshot via
	// the expvar package (ExpvarName returns the variable name) for
	// /debug/vars scraping.
	//
	// Deprecated: Expvar predates the obs registry and is kept as a
	// thin adapter over it; new code should scrape the MetricsAddr
	// endpoint instead.
	Expvar bool
}

// Dispatcher executes a continuous stream of jobs with at-most-once
// semantics. Submitted jobs are batched into rounds; every round runs the
// KKβ algorithm on one of S independent shards, and jobs a round leaves
// unperformed (Theorem 2.1 makes some unavoidable) are carried into the
// shard's next round. A job is therefore executed at most once — and, as
// long as the dispatcher runs, exactly once; the per-round effectiveness
// tail of ≤ β+m−2 jobs is deferred, never lost.
//
// Do(ctx, Task) is the submission entry point: a Task carries its
// payload plus an optional deadline, priority (each shard drains High
// before Normal before Low) and completion callback, and the returned
// Handle exposes the job's future. A job whose deadline passes before
// its round is assembled is never started and resolves with Expired set
// — expiry can only turn "run once" into "run zero times", so
// at-most-once is untouched. The v1 paths (Submit, SubmitAsync,
// SubmitCallback, SubmitBatch) remain as thin wrappers over the same
// core.
//
// With a durable Backend ("mmap:PATH") at-most-once extends across
// process death: performed jobs are journaled in the register file
// before their payload runs, and a restarted dispatcher over the same
// files recovers the journal and skips those jobs when the stream is
// re-submitted. See examples/recover.
//
// All methods are safe for concurrent use. See examples/stream.
type Dispatcher struct {
	d *dispatch.Dispatcher
}

// SubmitPolicy selects what a submission into a full shard queue does;
// see DispatcherConfig.QueueDepth.
type SubmitPolicy = dispatch.SubmitPolicy

const (
	// Block parks the submitter until the shard's rounds free space.
	Block SubmitPolicy = dispatch.Block
	// FailFast returns ErrQueueFull instead of waiting; no job id is
	// consumed, so the caller can simply retry.
	FailFast SubmitPolicy = dispatch.FailFast
)

// ErrQueueFull is returned by the submit paths under SubmitPolicy
// FailFast when the target shard's bounded queue is at QueueDepth.
var ErrQueueFull = dispatch.ErrQueueFull

// ErrClosed is returned by every submission path after (or racing) Close
// — including Block-policy submitters that were parked on a full queue
// when Close began: they are released with ErrClosed, their job ids
// unconsumed, instead of hanging.
var ErrClosed = dispatch.ErrClosed

// ErrNilFn is returned by Do and DoBatch for a Task without a payload.
var ErrNilFn = dispatch.ErrNilFn

// JobResult reports a job's completion; exactly one is delivered per
// Handle future or callback. Err carries the payload's returned error
// (or context.DeadlineExceeded when Expired is set); Expired marks jobs
// whose deadline passed before their round was assembled (the payload
// never ran); Cancelled marks jobs whose submission ctx died while they
// were queued (likewise never started); Recovered marks jobs that
// resolved from a previous incarnation's durable journal without
// re-running.
type JobResult = dispatch.JobResult

// Task is the v2 job descriptor accepted by Do and DoBatch: a payload
// plus its scheduling contract (deadline, priority, optional completion
// callback). It subsumes all four v1 submission paths — see the README's
// migration table.
type Task = dispatch.Task

// Handle identifies an accepted Task: its dispatcher-wide job id and a
// Done() future delivering exactly one JobResult.
type Handle = dispatch.Handle

// Priority is a Task's scheduling class. Shards drain High before
// Normal before Low (FIFO within a class, residue keeps its place in
// its own class); a lower class is delayed only while a higher one has
// queued work.
type Priority = dispatch.Priority

const (
	// Normal is the default (zero-value) priority; all v1 submissions
	// use it.
	Normal Priority = dispatch.Normal
	// High jobs jump every queued Normal and Low job.
	High Priority = dispatch.High
	// Low jobs run only when no High or Normal work is queued.
	Low Priority = dispatch.Low
)

// DefaultWorkersPerShard is the worker count a dispatcher uses when
// DispatcherConfig.WorkersPerShard is 0: runtime.GOMAXPROCS(0) divided
// across the shards (rounded up), clamped to [2, 8]. KKβ needs m ≥ 2,
// and past 8 workers per shard the register contention outweighs the
// parallelism.
func DefaultWorkersPerShard(shards int) int { return dispatch.DefaultWorkers(shards) }

// NewDispatcher starts a dispatcher; Close must be called to release its
// worker pools.
func NewDispatcher(cfg DispatcherConfig) (*Dispatcher, error) {
	dcfg := dispatch.Config{
		Shards:          cfg.Shards,
		Workers:         cfg.WorkersPerShard,
		Beta:            cfg.Beta,
		MaxBatch:        cfg.MaxBatch,
		QueueDepth:      cfg.QueueDepth,
		Policy:          cfg.SubmitPolicy,
		RoundTarget:     cfg.RoundTarget,
		Jitter:          cfg.Jitter,
		Seed:            cfg.Seed,
		CrashPlan:       cfg.CrashPlan,
		Metrics:         cfg.Metrics,
		MetricsAddr:     cfg.MetricsAddr,
		TraceSampleRate: cfg.TraceSampleRate,
		Expvar:          cfg.Expvar,
	}
	if cfg.Backend != "" && cfg.Backend != "atomic" {
		spec := cfg.Backend
		dcfg.NewMem = func(shard, size int) (membackend.Backend, error) {
			return membackend.Open(membackend.ShardSpec(spec, shard), size)
		}
		dcfg.MaxJobs = cfg.MaxJobs
		dcfg.JournalBatch = cfg.JournalBatch
	}
	d, err := dispatch.New(dcfg)
	if err != nil {
		return nil, err
	}
	return &Dispatcher{d: d}, nil
}

// Do is the v2 submission entry point: it accepts one Task — payload,
// optional deadline, priority and completion callback — and returns its
// Handle (job id plus Done() future). It subsumes all four v1 paths:
// Submit is Do with a bare payload, SubmitAsync is Handle.Done,
// SubmitCallback is Task.Callback, SubmitBatch is DoBatch.
//
// ctx governs admission: a cancelled or expired ctx releases a
// Block-policy submitter parked on a full queue (and a racing Close
// releases it with ErrClosed) WITHOUT consuming a job id, so the id
// sequence stays dense for deterministic re-submission. Once Do returns
// nil, the Task will resolve exactly once — performed (Err carrying the
// payload's error), Expired (deadline passed before its round was
// assembled; the payload never ran), Cancelled (ctx died while the Task
// was still queued; resolved at the next round assembly, payload never
// ran), or Recovered (durable journal). A Task whose round has already
// been cut runs to completion regardless of ctx.
func (d *Dispatcher) Do(ctx context.Context, t Task) (Handle, error) { return d.d.Do(ctx, t) }

// DoBatch submits the Tasks in order, returning one Handle per Task
// over a contiguous id block; acceptance is all-or-nothing exactly as
// for SubmitBatch. ctx is checked only BEFORE acceptance (a dead ctx
// rejects the batch with nothing consumed); unlike Do's single-job
// admission, an accepted Block-policy batch consumes its ids
// immediately and is fed in un-abortably as rounds free space — its ids
// are already part of the deterministic sequence, so cancelling ctx
// mid-feed cannot release it. An EMPTY batch returns the sentinel
// (nil, nil): no job id is consumed and no shard is touched — real ids
// start at 1.
func (d *Dispatcher) DoBatch(ctx context.Context, tasks []Task) ([]Handle, error) {
	return d.d.DoBatch(ctx, tasks)
}

// Submit enqueues fn for at-most-once execution and returns its job id.
// Ids start at 1 and each shard's id sequence is dense: a shard hands
// out consecutive ids from cache-line-sized blocks leased off a global
// cursor, so a fixed submission order always reproduces the same ids
// (the deterministic re-submission contract) without every Submit
// contending on one shared counter. With a bounded queue
// (QueueDepth) and the target shard saturated, Submit blocks until
// rounds free space (Block) or fails with ErrQueueFull (FailFast).
//
// Deprecated: Submit is the v1 path, kept as a thin wrapper; use Do,
// which adds ctx-aware admission, deadlines, priorities and error
// reporting.
func (d *Dispatcher) Submit(fn func()) (uint64, error) { return d.d.Submit(fn) }

// SubmitAsync enqueues fn like Submit and additionally returns a
// future: a 1-buffered channel that receives exactly one JobResult once
// the job has been performed (its payload returned) — or immediately,
// with Recovered set, when the job resolves from a previous
// incarnation's durable journal. The channel is never closed.
// Backpressure applies exactly as for Submit.
//
// Deprecated: SubmitAsync is the v1 path, kept as a thin wrapper; use
// Do — the Handle's Done() is the future.
func (d *Dispatcher) SubmitAsync(fn func()) (uint64, <-chan JobResult, error) {
	return d.d.SubmitAsync(fn)
}

// SubmitCallback enqueues fn like Submit and invokes done exactly once
// when the job completes. done runs on the performing shard's loop
// goroutine — keep it fast, and do not call the dispatcher's blocking
// methods from it — or synchronously on the submitting goroutine for
// journal-recovered jobs. A nil done degrades to Submit.
//
// Deprecated: SubmitCallback is the v1 path, kept as a thin wrapper;
// use Do with Task.Callback.
func (d *Dispatcher) SubmitCallback(fn func(), done func(JobResult)) (uint64, error) {
	return d.d.SubmitCallback(fn, done)
}

// SubmitBatch enqueues the jobs in order and returns the first id of their
// contiguous id block. Acceptance is all-or-nothing: a batch racing Close
// is either fully accepted (and performed) or rejected with an error.
//
// An EMPTY batch returns the sentinel (0, nil): no job id is consumed
// and no shard is touched. The sentinel is disjoint from real ids,
// which start at 1 (DoBatch's empty-batch sentinel is (nil, nil)).
//
// Deprecated: SubmitBatch is the v1 path, kept as a thin wrapper; use
// DoBatch.
func (d *Dispatcher) SubmitBatch(fns []func()) (uint64, error) {
	if len(fns) == 0 {
		return 0, nil
	}
	jobs := make([]dispatch.Job, len(fns))
	for i, fn := range fns {
		jobs[i] = fn
	}
	return d.d.SubmitBatch(jobs)
}

// Flush blocks until every job submitted so far has resolved —
// performed, expired, or recovered — including residue carried across
// rounds.
func (d *Dispatcher) Flush() { d.d.Flush() }

// FlushContext is Flush with a deadline: it returns nil once every job
// submitted so far has resolved, or ctx.Err() when ctx is cancelled or
// expires first. The dispatcher keeps draining either way.
func (d *Dispatcher) FlushContext(ctx context.Context) error { return d.d.FlushContext(ctx) }

// Close drains pending jobs, stops the shards and releases the pools;
// durable backends are synced and closed. Subsequent Submits fail.
// Close is idempotent.
func (d *Dispatcher) Close() error { return d.d.Close() }

// Sync flushes durable register backends to stable storage. It is a
// no-op for in-process dispatchers and safe to call while rounds run.
func (d *Dispatcher) Sync() error { return d.d.Sync() }

// ExpvarName returns the name Stats is published under when
// DispatcherConfig.Expvar is set, and "" otherwise.
func (d *Dispatcher) ExpvarName() string { return d.d.ExpvarName() }

// OpsAddr returns the bound address of the ops HTTP endpoint, and ""
// when DispatcherConfig.MetricsAddr is unset. With a ":0" config it
// carries the kernel-chosen port.
func (d *Dispatcher) OpsAddr() string { return d.d.OpsAddr() }

// LatencyQuantiles reads quantiles (each in [0,1]) off the sampled
// submit→completion latency histogram — the same histogram /metrics
// exposes as amo_dispatcher_submit_to_done_seconds. ok is false when
// metrics are disabled or nothing has been sampled yet. Estimates
// never undershoot the true quantile and overshoot by at most 12.5%
// (the histogram's bucket width).
func (d *Dispatcher) LatencyQuantiles(qs ...float64) ([]time.Duration, bool) {
	return d.d.LatencyQuantiles(qs...)
}

// Stats returns a point-in-time snapshot of dispatcher progress.
func (d *Dispatcher) Stats() DispatcherStats {
	st := d.d.Stats()
	out := DispatcherStats{
		Submitted:          st.Submitted,
		Performed:          st.Performed,
		Pending:            st.Pending,
		Recovered:          st.Recovered,
		Expired:            st.Expired,
		Cancelled:          st.Cancelled,
		Rounds:             st.Rounds,
		Residue:            st.Residue,
		Duplicates:         st.Duplicates,
		Crashes:            st.Crashes,
		Steps:              st.Steps,
		Work:               st.Work,
		StolenJobs:         st.StolenJobs,
		SubmitBlockedNanos: st.SubmitBlockedNanos,
		EffHist:            st.EffHist,
		Elapsed:            st.Elapsed,
		JobsPerSec:         st.JobsPerSec,
		Shards:             make([]DispatcherShardStats, len(st.Shards)),
	}
	for i, sh := range st.Shards {
		out.Shards[i] = DispatcherShardStats{
			Rounds:             sh.Rounds,
			Performed:          sh.Performed,
			Residue:            sh.Residue,
			Expired:            sh.Expired,
			Cancelled:          sh.Cancelled,
			Duplicates:         sh.Duplicates,
			Crashes:            sh.Crashes,
			Steps:              sh.Steps,
			Work:               sh.Work,
			Stolen:             sh.Stolen,
			SubmitBlockedNanos: sh.SubmitBlockedNanos,
			QueueDepth:         sh.QueueDepth,
			LastBatch:          sh.LastBatch,
			LastPerformed:      sh.LastPerformed,
		}
	}
	return out
}

// EffBuckets is the length of DispatcherStats.EffHist, the per-round
// effectiveness histogram.
const EffBuckets = dispatch.EffBuckets

// DispatcherStats snapshots dispatcher progress counters.
type DispatcherStats struct {
	// Submitted, Performed and Pending count jobs end to end; Pending jobs
	// are queued or in flight. Recovered counts re-submitted jobs that
	// resolved from a previous incarnation's durable journal without
	// re-running; Expired counts jobs whose deadline passed before their
	// round was assembled (the payload never ran); Cancelled counts jobs
	// whose submission ctx was dead at round assembly (likewise never
	// started). All three are included in Performed, so
	// Submitted = Performed + Pending always holds.
	Submitted, Performed, Pending, Recovered, Expired, Cancelled uint64
	// Rounds is the number of executed rounds across all shards; Residue
	// counts jobs that were carried from one round to a later one (each
	// carry counts once). Duplicates is always 0 — it is reported so
	// harnesses can assert it. Crashes counts injected worker crashes.
	Rounds, Residue, Duplicates, Crashes uint64
	// Steps and Work aggregate the paper's cost measures over all rounds.
	Steps, Work uint64
	// StolenJobs counts jobs idle shards claimed from sibling queues
	// (work-stealing); SubmitBlockedNanos accumulates the time
	// submitters spent parked on full bounded queues (backpressure).
	StolenJobs, SubmitBlockedNanos uint64
	// EffHist is the per-round effectiveness histogram over all shards:
	// fixed log-scale buckets over each round's loss fraction
	// 1 − performed/batch. Bucket 0 counts rounds that lost more than
	// half their batch, bucket i rounds with loss in (2⁻⁽ⁱ⁺¹⁾, 2⁻ⁱ],
	// bucket EffBuckets−2 every smaller non-zero loss, and the last
	// bucket perfect rounds. Every executed round increments exactly one
	// bucket.
	EffHist [EffBuckets]uint64
	// Elapsed is the time since NewDispatcher; JobsPerSec is
	// Performed/Elapsed.
	Elapsed    time.Duration
	JobsPerSec float64
	// Shards is the per-shard breakdown, indexed by shard id.
	Shards []DispatcherShardStats
}

// DispatcherShardStats reports one shard's counters; see the dispatch
// package for per-field semantics. LastPerformed/LastBatch is the shard's
// most recent round effectiveness; QueueDepth is the shard's pending-job
// queue length at snapshot time (never above
// DispatcherConfig.QueueDepth when that is set).
type DispatcherShardStats struct {
	Rounds, Performed, Residue, Duplicates, Crashes uint64
	Expired, Cancelled                              uint64
	Steps, Work                                     uint64
	Stolen, SubmitBlockedNanos                      uint64
	QueueDepth                                      int
	LastBatch, LastPerformed                        int
}
