package atmostonce

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	"atmostonce/internal/obs"
)

// TestOpsEndpointFamilies: a public-API dispatcher with MetricsAddr
// serves valid Prometheus exposition covering all three layers —
// dispatcher, netmem and membackend. The netmem and membackend
// families register at package init (the root package links netmem for
// the "net:" backend), so they are present zero-valued even on an
// in-process dispatcher that never opens a connection.
func TestOpsEndpointFamilies(t *testing.T) {
	d, err := NewDispatcher(DispatcherConfig{
		Shards:          2,
		MetricsAddr:     "127.0.0.1:0",
		TraceSampleRate: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	addr := d.OpsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr set but OpsAddr is empty")
	}
	for i := 0; i < 200; i++ {
		if _, err := d.Submit(func() {}); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus exposition: %v", err)
	}
	if stats.Families == 0 || stats.Series == 0 {
		t.Fatalf("empty exposition: %+v", stats)
	}
	for _, family := range []string{
		"# TYPE amo_dispatcher_submitted_jobs_total counter",
		"# TYPE amo_dispatcher_submit_to_done_seconds histogram",
		"# TYPE amo_netmem_client_requests_total counter",
		"# TYPE amo_membackend_opens_total counter",
	} {
		if !bytes.Contains(body, []byte(family)) {
			t.Errorf("/metrics missing %q", family)
		}
	}

	if qs, ok := d.LatencyQuantiles(0.5, 0.99); !ok || len(qs) != 2 {
		t.Fatalf("LatencyQuantiles over the public API: ok=%v qs=%v", ok, qs)
	}
}
